package rewrite

import (
	"context"
	"runtime"
	"sync"
	"time"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// FilterMode selects the cycle-filtering strategy of §5.2.
type FilterMode int

const (
	// FilterEfficient is Algorithm 2: a descendants map built once per
	// iteration for pre-filtering, plus a DFS post-processing pass.
	FilterEfficient FilterMode = iota
	// FilterVanilla recomputes the descendants map before every single
	// substitution (O(n_m * N) per iteration).
	FilterVanilla
	// FilterNone performs no cycle filtering; extraction must then use
	// the ILP formulation with cycle constraints (§5.1).
	FilterNone
)

// String names the mode.
func (m FilterMode) String() string {
	switch m {
	case FilterEfficient:
		return "efficient"
	case FilterVanilla:
		return "vanilla"
	default:
		return "none"
	}
}

// Limits bound the exploration phase (§6.1: N_max = 50000, k_max = 15,
// k_multi = 1 by default).
type Limits struct {
	MaxNodes int           // stop when the e-graph holds this many e-nodes
	MaxIters int           // maximum exploration iterations
	KMulti   int           // iterations during which multi-pattern rules fire
	Timeout  time.Duration // wall-clock bound for the exploration phase
}

// DefaultLimits mirrors the paper's experimental setup.
func DefaultLimits() Limits {
	return Limits{MaxNodes: 50000, MaxIters: 15, KMulti: 1, Timeout: time.Hour}
}

// Stats reports what the exploration phase did.
type Stats struct {
	Iterations    int
	Saturated     bool
	HitNodeLimit  bool
	HitIterLimit  bool
	HitTimeout    bool
	Canceled      bool // the caller's context was canceled mid-exploration
	Matches       int  // candidate substitutions found
	Applied       int  // substitutions applied
	SkippedShape  int  // substitutions rejected by shape checking
	SkippedCycle  int  // substitutions rejected by the pre-filter
	FilteredNodes int  // e-nodes put on the filter list by post-processing
	ENodes        int  // final e-node count
	EClasses      int  // final e-class count
	ExploreTime   time.Duration
	// SearchTime is the part of ExploreTime spent in the e-matching
	// search phase (frozen-view scans), summed over iterations — the
	// quantity the Workers knob parallelizes.
	SearchTime time.Duration
}

// Explored is the result of the exploration phase: the saturated (or
// limit-bounded) e-graph, its root class, and the cycle filter list.
type Explored struct {
	G        *egraph.EGraph
	Root     egraph.ClassID
	Filtered FilterSet
	Stats    Stats
	// IngestStamp is the insertion-counter value right after the input
	// graph was loaded: e-nodes with stamps at or below it form the
	// original graph, which extraction uses as a warm start.
	IngestStamp int64
}

// Runner drives the exploration phase over a rule set.
type Runner struct {
	Rules  []*Rule
	Filter FilterMode
	Limits Limits
	// Workers bounds the goroutines used by the search phase of each
	// iteration. Searching runs against a frozen read-only view of the
	// e-graph (egraph.View), so N workers match concurrently with no
	// locks; results are deterministic and identical to the sequential
	// scan whatever the worker count. 0 means runtime.GOMAXPROCS(0);
	// 1 forces the sequential path.
	Workers int
	// Progress, when non-nil, is called from the exploring goroutine
	// once before the first iteration (with iteration 0 and the
	// freshly ingested e-graph's sizes) and again after every
	// completed iteration. It must return quickly and must not touch
	// the e-graph.
	Progress func(iteration, enodes, eclasses int)
}

// NewRunner builds a Runner with default limits and efficient filtering.
func NewRunner(rules []*Rule) *Runner {
	return &Runner{Rules: rules, Filter: FilterEfficient, Limits: DefaultLimits()}
}

// canonicalSource is one entry of the canonicalized S-expression set of
// Algorithm 1 (lines 1-8): a canonical pattern searched once per
// iteration, shared by all rule sources that rename to it.
type canonicalSource struct {
	pat     *pattern.Pat
	matches []pattern.Match // filled per iteration
}

// sourceRef ties a rule's i-th source to its canonical pattern and the
// rename map used to decanonicalize matches.
type sourceRef struct {
	canon *canonicalSource
	back  map[string]string // canonical var -> original var
}

// Run explores the e-graph of t until saturation or limits.
func (r *Runner) Run(t *tensor.Graph) (*Explored, error) {
	return r.RunContext(context.Background(), t)
}

// RunContext is Run with cancellation: when ctx is done, exploration
// stops at the next check point exactly as if Limits.Timeout had
// expired (Stats.Canceled is set), and the partial e-graph is returned.
// Deciding whether a canceled request should still be extracted is the
// caller's business (tensat.OptimizeContext aborts; an anytime caller
// may extract what it has).
func (r *Runner) RunContext(ctx context.Context, t *tensor.Graph) (*Explored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, root, _, err := Ingest(t)
	if err != nil {
		return nil, err
	}
	ex := &Explored{G: g, Root: root, Filtered: make(FilterSet), IngestStamp: g.Stamp()}
	r.explore(ex, ctx.Done())
	return ex, nil
}

// RunOnEGraph explores an existing e-graph (used by tests and by the
// incremental experiment harness).
func (r *Runner) RunOnEGraph(g *egraph.EGraph, root egraph.ClassID) *Explored {
	ex := &Explored{G: g, Root: root, Filtered: make(FilterSet), IngestStamp: g.Stamp()}
	r.explore(ex, nil)
	return ex
}

func (r *Runner) explore(ex *Explored, done <-chan struct{}) {
	start := time.Now()
	g := ex.G
	lim := r.Limits
	// MaxNodes/Timeout zero means "default"; MaxIters 0 is honored as-is
	// (an explicit "do not explore"), matching the k_multi=0 baseline.
	if lim.MaxNodes == 0 {
		lim.MaxNodes = 50000
	}
	if lim.Timeout == 0 {
		lim.Timeout = time.Hour
	}

	// Canonicalize all source patterns once (Algorithm 1, lines 1-8).
	canon := make(map[string]*canonicalSource)
	refs := make(map[*Rule][]sourceRef, len(r.Rules))
	for _, rule := range r.Rules {
		for _, src := range rule.Sources {
			cp, back := src.Canonical()
			key := cp.String()
			cs, ok := canon[key]
			if !ok {
				cs = &canonicalSource{pat: cp}
				canon[key] = cs
			}
			refs[rule] = append(refs[rule], sourceRef{canon: cs, back: back})
		}
	}

	if r.Progress != nil {
		r.Progress(0, g.NodeCount(), g.ClassCount())
	}
	deadline := start.Add(lim.Timeout)
	for iter := 0; ; iter++ {
		if iter >= lim.MaxIters {
			ex.Stats.HitIterLimit = true
			break
		}
		if g.NodeCount() >= lim.MaxNodes {
			ex.Stats.HitNodeLimit = true
			break
		}
		if stopped(done) {
			ex.Stats.Canceled = true
			break
		}
		if time.Now().After(deadline) {
			ex.Stats.HitTimeout = true
			break
		}
		useMulti := iter < lim.KMulti
		changed, interrupted := r.iterate(ex, canon, refs, useMulti, lim, deadline, done)
		ex.Stats.Iterations++
		if r.Progress != nil {
			r.Progress(ex.Stats.Iterations, g.NodeCount(), g.ClassCount())
		}
		// Saturation means a full iteration ran to completion without
		// changing the e-graph. An iteration cut short by cancellation,
		// timeout, or the node limit proves nothing — a canceled or
		// timed-out run must never report Saturated; loop back so the
		// checks above classify the stop reason instead.
		if !changed && !interrupted && !stopped(done) && !time.Now().After(deadline) {
			ex.Stats.Saturated = true
			break
		}
	}

	// Guarantee the acyclic invariant before extraction.
	if r.Filter != FilterNone {
		ex.Stats.FilteredNodes += FilterCycles(g, ex.Filtered)
	}
	ex.Stats.ENodes = g.NodeCount()
	ex.Stats.EClasses = g.ClassCount()
	ex.Stats.ExploreTime = time.Since(start)
}

// stopped reports whether the cancellation channel has fired; a nil
// channel (no context) never stops.
func stopped(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// iterate runs one exploration iteration: search all canonical
// patterns, then apply all rule matches (Algorithm 1, lines 9-22),
// then rebuild and post-process cycles (Algorithm 2, lines 10-18).
// It reports whether the e-graph changed and whether the iteration was
// interrupted (cancellation, deadline, or node limit) before every
// match was considered — an interrupted no-change iteration is not
// saturation.
func (r *Runner) iterate(ex *Explored, canon map[string]*canonicalSource,
	refs map[*Rule][]sourceRef, useMulti bool, lim Limits, deadline time.Time,
	done <-chan struct{}) (changed, interrupted bool) {

	g := ex.G
	nodesBefore := g.NodeCount()
	unioned := false

	// One descendants snapshot per iteration for the efficient filter.
	var desc descendants
	if r.Filter == FilterEfficient {
		desc = computeDescendants(g, ex.Filtered)
	}

	// SEARCH(G, e_c): all matches for all canonical patterns, matched
	// concurrently against a frozen read-only view of the e-graph.
	searchStart := time.Now()
	r.searchAll(g.Freeze(), canon, done)
	ex.Stats.SearchTime += time.Since(searchStart)

	apply := func(rule *Rule, matched []egraph.ClassID, subst pattern.Subst) {
		// Shape checking (§4) over every target pattern.
		varMeta := func(v string) (*tensor.Meta, bool) {
			id, ok := subst[v]
			if !ok {
				return nil, false
			}
			m := ClassMeta(g, id)
			return m, m != nil
		}
		for _, tgt := range rule.Targets {
			if _, err := pattern.InferMeta(tgt, varMeta); err != nil {
				ex.Stats.SkippedShape++
				return
			}
		}
		if rule.Cond != nil && !rule.Cond(g, subst) {
			ex.Stats.SkippedShape++
			return
		}
		// Cycle pre-filtering.
		if r.Filter != FilterNone {
			d := desc
			if r.Filter == FilterVanilla {
				// Vanilla: a full pass over the e-graph per substitution.
				d = computeDescendants(g, ex.Filtered)
			}
			for i, tgt := range rule.Targets {
				if willCreateCycle(g, d, tgt, subst, matched[i]) {
					ex.Stats.SkippedCycle++
					return
				}
			}
		}
		// APPLY: instantiate each target and union with its matched output.
		for i, tgt := range rule.Targets {
			id, err := pattern.Instantiate(g, tgt, subst)
			if err != nil {
				return // unbound variable: cannot happen for validated rules
			}
			if _, ch := g.Union(id, matched[i]); ch {
				unioned = true
			}
		}
		ex.Stats.Applied++
	}

	for _, rule := range r.Rules {
		if rule.IsMulti() && !useMulti {
			continue
		}
		if g.NodeCount() >= lim.MaxNodes || time.Now().After(deadline) || stopped(done) {
			// Record timeout/cancel here, not only at the explore loop
			// top: the iteration-limit check there runs first and would
			// otherwise mask a budget cut as a plain iter-limit stop.
			if stopped(done) {
				ex.Stats.Canceled = true
			} else if time.Now().After(deadline) {
				ex.Stats.HitTimeout = true
			}
			interrupted = true
			break
		}
		rrefs := refs[rule]
		if !rule.IsMulti() {
			ref := rrefs[0]
			for mi, m := range ref.canon.matches {
				// Large match lists must notice a dead request between
				// rule boundaries, same cadence as applyMulti.
				if mi%256 == 255 && (time.Now().After(deadline) || stopped(done)) {
					if stopped(done) {
						ex.Stats.Canceled = true
					} else {
						ex.Stats.HitTimeout = true
					}
					interrupted = true
					break
				}
				ex.Stats.Matches++
				apply(rule, []egraph.ClassID{m.Class}, m.Subst.Rename(ref.back))
				if g.NodeCount() >= lim.MaxNodes {
					interrupted = true
					break
				}
			}
			continue
		}
		// Multi-pattern: cartesian product of decanonicalized matches,
		// keeping only combinations compatible on shared variables
		// (Algorithm 1, lines 11-21).
		if r.applyMulti(ex, rule, rrefs, apply, lim, deadline, done) {
			interrupted = true
		}
	}

	g.Rebuild()

	if r.Filter != FilterNone {
		ex.Stats.FilteredNodes += FilterCycles(g, ex.Filtered)
	}
	return unioned || g.NodeCount() != nodesBefore, interrupted
}

// searchShardSize bounds how many classes one search work unit scans
// before the cancellation channel is consulted again. It caps the
// latency between a caller canceling and the search phase noticing:
// on pathological, heavily merged e-graphs a single pattern × full
// class list scan can run for minutes, which must not pin a worker
// slot after every interested request is gone.
const searchShardSize = 1024

// searchAll fills cs.matches for every canonical pattern by scanning a
// frozen view, fanning the (pattern × class-shard) work units out over
// a bounded worker pool. Shard results are concatenated in scan order,
// so the match list per pattern is byte-for-byte the one a sequential
// scan produces regardless of Workers. A fired done channel makes
// remaining work units return empty (the caller's rule loop observes
// the cancellation before applying anything).
func (r *Runner) searchAll(view *egraph.View, canon map[string]*canonicalSource, done <-chan struct{}) {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pats := make([]*canonicalSource, 0, len(canon))
	for _, cs := range canon {
		pats = append(pats, cs)
	}
	classes := view.Classes()
	if workers == 1 || len(classes) == 0 || len(pats) == 0 {
		for _, cs := range pats {
			if stopped(done) {
				cs.matches = nil
				continue
			}
			// Scan in bounded chunks, re-checking cancellation between
			// them; chunk results concatenate in scan order, so the
			// match list is identical to one whole-view scan.
			var all []pattern.Match
			for lo := 0; lo < len(classes) && !stopped(done); lo += searchShardSize {
				hi := lo + searchShardSize
				if hi > len(classes) {
					hi = len(classes)
				}
				all = append(all, pattern.SearchClasses(view, cs.pat, classes[lo:hi])...)
			}
			cs.matches = all
		}
		return
	}

	// Shard the class scan so a single hot pattern also spreads across
	// workers; oversubscribe shards for load balance, and cap the
	// shard size so cancellation latency stays bounded.
	shards := workers * 4
	if min := (len(classes) + searchShardSize - 1) / searchShardSize; shards < min {
		shards = min
	}
	if shards > len(classes) {
		shards = len(classes)
	}
	shardSize := (len(classes) + shards - 1) / shards
	shards = (len(classes) + shardSize - 1) / shardSize

	type task struct{ p, s int }
	results := make([][][]pattern.Match, len(pats))
	for i := range results {
		results[i] = make([][]pattern.Match, shards)
	}
	tasks := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				if stopped(done) {
					continue // drain cheaply once canceled
				}
				lo := t.s * shardSize
				hi := lo + shardSize
				if hi > len(classes) {
					hi = len(classes)
				}
				results[t.p][t.s] = pattern.SearchClasses(view, pats[t.p].pat, classes[lo:hi])
			}
		}()
	}
	for p := range pats {
		for s := 0; s < shards; s++ {
			tasks <- task{p, s}
		}
	}
	close(tasks)
	wg.Wait()

	for i, cs := range pats {
		n := 0
		for _, ms := range results[i] {
			n += len(ms)
		}
		all := make([]pattern.Match, 0, n)
		for _, ms := range results[i] {
			all = append(all, ms...)
		}
		cs.matches = all
	}
}

// applyMulti enumerates compatible match combinations for a
// multi-pattern rule via backtracking over the per-source match lists.
// It reports whether enumeration was aborted early (node limit,
// deadline, or cancellation): the abort flag unwinds the entire
// recursion, so no sibling branch of the cartesian product keeps
// enumerating after the budget is gone. An abort caused by the done
// channel sets Stats.Canceled.
func (r *Runner) applyMulti(ex *Explored, rule *Rule, rrefs []sourceRef,
	apply func(*Rule, []egraph.ClassID, pattern.Subst), lim Limits, deadline time.Time,
	done <-chan struct{}) (aborted bool) {

	g := ex.G
	matched := make([]egraph.ClassID, len(rrefs))
	visited := 0
	var rec func(i int, subst pattern.Subst)
	rec = func(i int, subst pattern.Subst) {
		if aborted {
			return
		}
		if g.NodeCount() >= lim.MaxNodes {
			aborted = true
			return
		}
		if visited++; visited%256 == 0 && (time.Now().After(deadline) || stopped(done)) {
			if stopped(done) {
				ex.Stats.Canceled = true
			} else {
				ex.Stats.HitTimeout = true
			}
			aborted = true
			return
		}
		if i == len(rrefs) {
			ex.Stats.Matches++
			apply(rule, append([]egraph.ClassID(nil), matched...), subst)
			return
		}
		ref := rrefs[i]
		for _, m := range ref.canon.matches {
			if aborted {
				return
			}
			ms := m.Subst.Rename(ref.back)
			// COMPATIBLE: shared variables must map to the same e-class.
			merged := subst.Clone()
			ok := true
			for v, id := range ms {
				if prev, bound := merged[v]; bound {
					if g.Find(prev) != g.Find(id) {
						ok = false
						break
					}
					continue
				}
				merged[v] = id
			}
			if !ok {
				continue
			}
			matched[i] = m.Class
			rec(i+1, merged)
		}
	}
	rec(0, pattern.Subst{})
	return aborted
}
