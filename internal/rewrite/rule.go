package rewrite

import (
	"fmt"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
)

// Rule is a rewrite rule (§3.2): one or more source patterns matched
// jointly, and one target pattern per source. Single-pattern rules
// have exactly one source; multi-pattern rules (Figure 2) have several
// matched outputs, applied via Algorithm 1.
type Rule struct {
	Name    string
	Sources []*pattern.Pat
	Targets []*pattern.Pat

	// Cond, when non-nil, is an extra applicability predicate checked
	// after the syntactic match and shape check (egg-style conditional
	// rewrites, footnote 3 of the paper).
	Cond func(g *egraph.EGraph, s pattern.Subst) bool
}

// IsMulti reports whether the rule has multiple matched outputs.
func (r *Rule) IsMulti() bool { return len(r.Sources) > 1 }

// NewRule builds a single-pattern rule from S-expression text.
func NewRule(name, src, dst string) (*Rule, error) {
	s, err := pattern.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rule %s source: %w", name, err)
	}
	d, err := pattern.Parse(dst)
	if err != nil {
		return nil, fmt.Errorf("rule %s target: %w", name, err)
	}
	r := &Rule{Name: name, Sources: []*pattern.Pat{s}, Targets: []*pattern.Pat{d}}
	return r, r.validate()
}

// NewMultiRule builds a multi-pattern rule; srcs and dsts are
// whitespace-separated pattern lists of equal length, with pairwise
// matched outputs (§3.2).
func NewMultiRule(name, srcs, dsts string) (*Rule, error) {
	ss, err := pattern.ParseMulti(srcs)
	if err != nil {
		return nil, fmt.Errorf("rule %s sources: %w", name, err)
	}
	ds, err := pattern.ParseMulti(dsts)
	if err != nil {
		return nil, fmt.Errorf("rule %s targets: %w", name, err)
	}
	if len(ss) != len(ds) {
		return nil, fmt.Errorf("rule %s: %d sources but %d targets", name, len(ss), len(ds))
	}
	if len(ss) == 0 {
		return nil, fmt.Errorf("rule %s: empty", name)
	}
	r := &Rule{Name: name, Sources: ss, Targets: ds}
	return r, r.validate()
}

// MustRule and MustMultiRule panic on malformed rule text; rule tables
// are compile-time constants so a panic is a programming error.
func MustRule(name, src, dst string) *Rule {
	r, err := NewRule(name, src, dst)
	if err != nil {
		panic(err)
	}
	return r
}

// MustMultiRule is the panicking variant of NewMultiRule.
func MustMultiRule(name, srcs, dsts string) *Rule {
	r, err := NewMultiRule(name, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return r
}

// validate checks that every target variable is bound by some source.
func (r *Rule) validate() error {
	bound := make(map[string]bool)
	for _, s := range r.Sources {
		for _, v := range s.Vars() {
			bound[v] = true
		}
	}
	for _, d := range r.Targets {
		for _, v := range d.Vars() {
			if !bound[v] {
				return fmt.Errorf("rule %s: target variable %s not bound by any source", r.Name, v)
			}
		}
	}
	return nil
}

// String renders the rule.
func (r *Rule) String() string {
	src, dst := "", ""
	for i := range r.Sources {
		if i > 0 {
			src += ", "
			dst += ", "
		}
		src += r.Sources[i].String()
		dst += r.Targets[i].String()
	}
	return fmt.Sprintf("%s: %s => %s", r.Name, src, dst)
}

// Bidirectional expands a list of (src, dst) rule texts into rules for
// both directions, naming them name and name-rev.
func Bidirectional(name, src, dst string) []*Rule {
	return []*Rule{MustRule(name, src, dst), MustRule(name+"-rev", dst, src)}
}
