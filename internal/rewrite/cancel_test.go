package rewrite

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tensat/internal/egraph"
	"tensat/internal/pattern"
	"tensat/internal/tensor"
)

// manyMatmulGraph builds n matmuls sharing one input, so the 2-source
// merge rule's cartesian product has n*n combinations.
func manyMatmulGraph(t *testing.T, n int) *tensor.Graph {
	t.Helper()
	b := tensor.NewBuilder()
	x := b.Input("x", 8, 32)
	outs := make([]*tensor.Node, n)
	for i := range outs {
		w := b.Weight(fmt.Sprintf("w%d", i), 32, 16)
		outs[i] = b.Matmul(tensor.ActNone, x, w)
	}
	return b.MustFinish(outs...)
}

// TestCancelAbortsMultiEnumeration cancels the context from inside the
// rule condition a few combinations into a large cartesian product and
// checks the whole recursion unwinds promptly: before the abort-flag
// fix, the %256 deadline check only returned from the current frame,
// so sibling branches kept enumerating (and evaluating conditions)
// until the product was exhausted.
func TestCancelAbortsMultiEnumeration(t *testing.T) {
	const n = 60 // 3600 combinations
	g := manyMatmulGraph(t, n)
	rule := MustMultiRule("merge",
		"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
		"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls, afterCancel := 0, 0
	rule.Cond = func(_ *egraph.EGraph, _ pattern.Subst) bool {
		calls++
		if calls == 5 {
			cancel()
		} else if calls > 5 {
			afterCancel++
		}
		return false // never rewrite: isolate enumeration behavior
	}

	r := NewRunner([]*Rule{rule})
	r.Limits.KMulti = 1
	ex, err := r.RunContext(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Stats.Canceled {
		t.Fatalf("cancellation not reported: %+v", ex.Stats)
	}
	if ex.Stats.Saturated {
		t.Fatalf("canceled run reported Saturated: %+v", ex.Stats)
	}
	// The cancellation check fires every 256 recursion visits, so at
	// most a few hundred more conditions may run; exhausting the
	// product would run ~3600.
	if afterCancel > 1000 {
		t.Fatalf("enumeration continued after cancel: %d more condition calls", afterCancel)
	}
}

// TestCanceledRunNeverSaturated cancels during an iteration that makes
// no changes: before the fix, explore saw "no unions" and reported
// Saturated even though enumeration had been cut short.
func TestCanceledRunNeverSaturated(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	g := b.MustFinish(b.Relu(x))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rule := MustRule("gated", "(relu ?x)", "(relu (relu ?x))")
	rule.Cond = func(_ *egraph.EGraph, _ pattern.Subst) bool {
		cancel() // the request dies mid-iteration
		return false
	}

	r := NewRunner([]*Rule{rule})
	ex, err := r.RunContext(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Saturated {
		t.Fatalf("canceled run reported Saturated: %+v", ex.Stats)
	}
	if !ex.Stats.Canceled {
		t.Fatalf("cancellation not reported: %+v", ex.Stats)
	}
}

// TestTimedOutRunNeverSaturated is the deadline twin: the exploration
// budget expires during a no-change iteration; the run must report
// HitTimeout, not Saturated.
func TestTimedOutRunNeverSaturated(t *testing.T) {
	b := tensor.NewBuilder()
	x := b.Input("x", 4, 4)
	g := b.MustFinish(b.Relu(x))

	rule := MustRule("gated", "(relu ?x)", "(relu (relu ?x))")
	rule.Cond = func(_ *egraph.EGraph, _ pattern.Subst) bool {
		time.Sleep(30 * time.Millisecond) // outlive the budget mid-iteration
		return false
	}

	r := NewRunner([]*Rule{rule})
	r.Limits.Timeout = 10 * time.Millisecond
	ex, err := r.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Saturated {
		t.Fatalf("timed-out run reported Saturated: %+v", ex.Stats)
	}
	if !ex.Stats.HitTimeout {
		t.Fatalf("timeout not reported: %+v", ex.Stats)
	}
}

// TestParallelExploreMatchesSequential runs the same workloads with
// Workers=1 and Workers=4 and demands identical exploration: same
// statistics and a byte-identical e-graph dump.
func TestParallelExploreMatchesSequential(t *testing.T) {
	workloads := []struct {
		name  string
		graph func() *tensor.Graph
		rules func() []*Rule
	}{
		{
			name:  "figure2-multi",
			graph: func() *tensor.Graph { return manyMatmulGraph(t, 6) },
			rules: func() []*Rule {
				return []*Rule{MustMultiRule("merge",
					"(matmul ?a ?x ?y) (matmul ?a ?x ?z)",
					"(split0 (split 1 (matmul ?a ?x (concat2 1 ?y ?z)))) (split1 (split 1 (matmul ?a ?x (concat2 1 ?y ?z))))")}
			},
		},
		{
			name: "small-algebra",
			graph: func() *tensor.Graph {
				b := tensor.NewBuilder()
				x := b.Input("x", 4, 4)
				y := b.Input("y", 4, 4)
				z := b.Input("z", 4, 4)
				return b.MustFinish(b.Ewadd(x, b.Ewadd(y, z)))
			},
			rules: func() []*Rule {
				rs := []*Rule{MustRule("comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)")}
				return append(rs, Bidirectional("assoc", "(ewadd ?x (ewadd ?y ?z))", "(ewadd (ewadd ?x ?y) ?z)")...)
			},
		},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			run := func(workers int) *Explored {
				r := NewRunner(w.rules())
				r.Limits.KMulti = 2
				r.Limits.MaxIters = 4
				r.Workers = workers
				ex, err := r.Run(w.graph())
				if err != nil {
					t.Fatal(err)
				}
				return ex
			}
			seq, par := run(1), run(4)
			ss, ps := seq.Stats, par.Stats
			ss.ExploreTime, ps.ExploreTime = 0, 0
			ss.SearchTime, ps.SearchTime = 0, 0
			ss.ApplyTime, ps.ApplyTime = 0, 0
			ss.RebuildTime, ps.RebuildTime = 0, 0
			if ss != ps {
				t.Fatalf("stats diverge:\nworkers=1: %+v\nworkers=4: %+v", ss, ps)
			}
			if seq.G.Dump() != par.G.Dump() {
				t.Fatal("e-graphs diverge between Workers=1 and Workers=4")
			}
		})
	}
}
