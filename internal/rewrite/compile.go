package rewrite

import (
	"tensat/internal/egraph"
	"tensat/internal/pattern"
)

// CompiledRules is the reusable compiled form of a rule set: the
// canonicalized source-pattern set of Algorithm 1 (lines 1-8), with
// each canonical pattern compiled once into a pattern.Program (the
// flat-instruction e-matching VM). Compile a rule set once — at rule
// registration — and share it across any number of concurrent runs:
// a CompiledRules is immutable and safe for concurrent use; all
// per-run search state lives in the Runner's exploration.
type CompiledRules struct {
	// Rules is the rule set this was compiled from, in order.
	Rules []*Rule

	pats []*compiledPat
	refs map[*Rule][]sourceRef
}

// compiledPat is one canonical source pattern, searched once per
// iteration and shared by every rule source that renames to it.
type compiledPat struct {
	pat  *pattern.Pat
	prog *pattern.Program
}

// sourceRef ties a rule's i-th source to its canonical pattern (by
// index into pats) and the rename map used to decanonicalize matches.
type sourceRef struct {
	pat  int
	back map[string]string // canonical var -> original var
}

// CompileRules canonicalizes and compiles a rule set. Patterns that
// differ only by variable naming share one canonical program, so the
// per-iteration search runs once per canonical form.
//
//lint:ctxflow-exempt one pass over the rule list at load time, bounded by rule-set size
func CompileRules(rules []*Rule) *CompiledRules {
	cr := &CompiledRules{Rules: rules, refs: make(map[*Rule][]sourceRef, len(rules))}
	index := make(map[string]int)
	for _, rule := range rules {
		for _, src := range rule.Sources {
			cp, back := src.Canonical()
			key := cp.String()
			i, ok := index[key]
			if !ok {
				i = len(cr.pats)
				index[key] = i
				cr.pats = append(cr.pats, &compiledPat{pat: cp, prog: pattern.Compile(cp)})
			}
			cr.refs[rule] = append(cr.refs[rule], sourceRef{pat: i, back: back})
		}
	}
	return cr
}

// Patterns reports how many canonical patterns the rule set compiled
// to (informational; distinct rules often share canonical sources).
func (cr *CompiledRules) Patterns() int { return len(cr.pats) }

// CanonicalPatterns returns the canonical source patterns and their
// compiled programs as parallel slices in first-seen order — the exact
// pattern set the search phase runs, for benchmarks and diagnostics.
// Callers must not modify the slices.
func (cr *CompiledRules) CanonicalPatterns() ([]*pattern.Pat, []*pattern.Program) {
	pats := make([]*pattern.Pat, len(cr.pats))
	progs := make([]*pattern.Program, len(cr.pats))
	for i, cp := range cr.pats {
		pats[i] = cp.pat
		progs[i] = cp.prog
	}
	return pats, progs
}

// compiledFor reports whether cr was compiled from exactly this rule
// slice (element identity), so a Runner can trust a caller-supplied
// compilation and recompile otherwise.
func (cr *CompiledRules) compiledFor(rules []*Rule) bool {
	if cr == nil || len(cr.Rules) != len(rules) {
		return false
	}
	for i, r := range rules {
		if cr.Rules[i] != r {
			return false
		}
	}
	return true
}

// substFor decanonicalizes one compact match into the map substitution
// rule application consumes: canonical slot i holds variable
// prog.Vars()[i], renamed through back (DECANONICAL of Algorithm 1).
func substFor(prog *pattern.Program, back map[string]string, m pattern.Compact) pattern.Subst {
	vars := prog.Vars()
	s := make(pattern.Subst, len(vars))
	for i, v := range vars {
		if orig, ok := back[v]; ok {
			v = orig
		}
		s[v] = m.Bind[i]
	}
	return s
}

// searchState carries the incremental e-matching memo across the
// iterations of one exploration run: the complete per-pattern match
// lists of the previous iteration's frozen view, and the view version
// they were computed at. On the next iteration only classes dirty
// since that version are re-searched; clean classes answer from the
// memo (see View.DirtySince for why that is sound).
type searchState struct {
	matches [][]pattern.Compact // per compiledPat: latest complete match list
	version uint64              // view version the lists were computed at
	valid   bool                // false until one full search completes
}

// mergeMatches builds a pattern's current match list by walking the
// candidate classes in ascending ID order, taking fresh results for
// dirty classes and memoized results for clean ones. Both inputs are
// ascending by root class, so the output is byte-identical to a full
// rescan of the candidate list.
func mergeMatches(cands []*egraph.Class, dirty map[egraph.ClassID]bool,
	memo, fresh []pattern.Compact) []pattern.Compact {

	out := make([]pattern.Compact, 0, len(memo)+len(fresh))
	mi, fi := 0, 0
	for _, cls := range cands {
		id := cls.ID
		if dirty[id] {
			for fi < len(fresh) && fresh[fi].Class < id {
				fi++
			}
			for fi < len(fresh) && fresh[fi].Class == id {
				out = append(out, fresh[fi])
				fi++
			}
		} else {
			for mi < len(memo) && memo[mi].Class < id {
				mi++
			}
			for mi < len(memo) && memo[mi].Class == id {
				out = append(out, memo[mi])
				mi++
			}
		}
	}
	return out
}
