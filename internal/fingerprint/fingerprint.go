// Package fingerprint computes deterministic, canonical content hashes
// of tensor computation graphs, used as cache keys by the optimization
// service (internal/serve). Two graphs receive the same fingerprint
// exactly when they are structurally identical computations:
//
//   - Node insertion order is irrelevant: the hash walks the DAG in the
//     topological order induced by the outputs, never in builder or
//     memory order.
//   - Input and weight names are irrelevant: identifiers are replaced
//     by (kind, shape, first-occurrence index), so "x" and "input_0"
//     naming the same tensor role collide, while two distinct inputs —
//     or the same shapes wired into different operand positions — do
//     not.
//   - Sharing is significant: a subgraph referenced twice hashes
//     differently from two structurally equal copies, matching the cost
//     model (shared nodes are paid once).
//
// The canonical form is an explicit byte serialization fed to SHA-256;
// no hash-combining shortcuts, so collisions are as unlikely as SHA-256
// collisions.
package fingerprint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"tensat/internal/tensor"
)

// Fingerprint is a canonical graph content hash.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint in hex (the wire/cache-key form).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Graph computes the canonical fingerprint of g.
func Graph(g *tensor.Graph) (Fingerprint, error) {
	var zero Fingerprint
	if g == nil || g.Root == nil {
		return zero, fmt.Errorf("fingerprint: nil graph")
	}
	c := &canonicalizer{
		h:       sha256.New(),
		ids:     make(map[*tensor.Node]int),
		tensors: make(map[string]int),
	}
	// Hash the output list, canonicalizing each output subgraph in
	// order. Outputs (not the noop-combined root) are the semantic
	// surface: the noop chain shape is an artifact of construction.
	c.str("tensat-graph-v1")
	c.num(len(g.Outputs))
	for _, out := range g.Outputs {
		c.num(c.visit(out))
	}
	if c.err != nil {
		return zero, c.err
	}
	var f Fingerprint
	c.h.Sum(f[:0])
	return f, nil
}

// GraphHex is Graph rendered as a hex string.
func GraphHex(g *tensor.Graph) (string, error) {
	f, err := Graph(g)
	if err != nil {
		return "", err
	}
	return f.String(), nil
}

// Key folds an ordered list of content-hash components — typically a
// graph fingerprint, an encoding of the effective options, and the
// content hashes of the optimization profile (rule set, cost model) —
// into one cache key. Components are length-prefixed before hashing,
// so distinct component lists never collide by concatenation
// ambiguity: Key("a", "bc") differs from Key("ab", "c"). Because the
// profile enters through content hashes, not names, identical graphs
// optimized under different profiles never share a key, while a
// profile reloaded with unchanged content keeps its keys.
func Key(parts ...string) string {
	h := sha256.New()
	h.Write([]byte("tensat-key-v1"))
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Tensors returns g's input/weight names in canonical first-occurrence
// order: index i names the same tensor role as index i in any
// structurally identical graph (same fingerprint). Callers use the two
// name lists to translate tensor identifiers between graphs that hash
// alike, e.g. to return a cached result in the requester's vocabulary.
func Tensors(g *tensor.Graph) ([]string, error) {
	if g == nil || g.Root == nil {
		return nil, fmt.Errorf("fingerprint: nil graph")
	}
	c := &canonicalizer{
		h:       sha256.New(), // hash output discarded; the walk drives naming
		ids:     make(map[*tensor.Node]int),
		tensors: make(map[string]int),
	}
	for _, out := range g.Outputs {
		c.visit(out)
	}
	if c.err != nil {
		return nil, c.err
	}
	names := make([]string, len(c.tensors))
	for name, i := range c.tensors {
		names[i] = name
	}
	return names, nil
}

type canonicalizer struct {
	h   hash.Hash
	ids map[*tensor.Node]int // node -> canonical id, assigned in visit order
	// tensors maps an input/weight name to its anonymized index, in
	// order of first occurrence in the canonical walk. The builder
	// hash-conses identical identifiers to one node, but graphs built
	// by hand may alias two nodes to one name; indexing by name keeps
	// those equivalent.
	tensors map[string]int
	err     error
}

func (c *canonicalizer) num(v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	c.h.Write(buf[:])
}

func (c *canonicalizer) str(s string) {
	c.num(len(s))
	c.h.Write([]byte(s))
}

// visit assigns canonical ids in a deterministic post-order walk
// (children before parents, outputs in declaration order) and hashes
// each node's record exactly once, at first visit.
func (c *canonicalizer) visit(n *tensor.Node) int {
	if id, ok := c.ids[n]; ok {
		return id
	}
	children := make([]int, len(n.Inputs))
	for i, in := range n.Inputs {
		children[i] = c.visit(in)
	}
	id := len(c.ids)
	c.ids[n] = id
	c.num(id)
	c.num(int(n.Op))
	switch n.Op {
	case tensor.OpInt:
		c.num(int(n.Int))
	case tensor.OpStr:
		// String parameters (axis permutations, reshape shapes) are
		// semantic; hash them verbatim.
		c.str(n.Str)
	case tensor.OpInput, tensor.OpWeight:
		// Anonymize the name, keep kind + shape + occurrence index.
		name, shape, err := tensor.ParseIdent(n.Str)
		if err != nil {
			if c.err == nil {
				c.err = fmt.Errorf("fingerprint: %w", err)
			}
			return id
		}
		idx, ok := c.tensors[name]
		if !ok {
			idx = len(c.tensors)
			c.tensors[name] = idx
		}
		c.num(idx)
		c.num(len(shape))
		for _, d := range shape {
			c.num(d)
		}
	}
	c.num(len(children))
	for _, ch := range children {
		c.num(ch)
	}
	return id
}
