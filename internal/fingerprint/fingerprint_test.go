package fingerprint

import (
	"testing"

	"tensat/internal/tensor"
)

// buildTwoMatmul builds the figure-2 style graph (two matmuls sharing
// one input), with configurable names and construction order.
func buildTwoMatmul(t *testing.T, xName, w1Name, w2Name string, reversed bool) *tensor.Graph {
	t.Helper()
	b := tensor.NewBuilder()
	var x, w1, w2 *tensor.Node
	if reversed {
		// Shuffled insertion order: weights first, second weight before
		// the first.
		w2 = b.Weight(w2Name, 256, 256)
		w1 = b.Weight(w1Name, 256, 256)
		x = b.Input(xName, 64, 256)
	} else {
		x = b.Input(xName, 64, 256)
		w1 = b.Weight(w1Name, 256, 256)
		w2 = b.Weight(w2Name, 256, 256)
	}
	g, err := b.Finish(b.Matmul(tensor.ActNone, x, w1), b.Matmul(tensor.ActNone, x, w2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeterministicAcrossInsertionOrder(t *testing.T) {
	a := buildTwoMatmul(t, "x", "w1", "w2", false)
	b := buildTwoMatmul(t, "x", "w1", "w2", true)
	fa, err := Graph(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Graph(b)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Fatalf("insertion order changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestDeterministicAcrossNames(t *testing.T) {
	a := buildTwoMatmul(t, "x", "w1", "w2", false)
	b := buildTwoMatmul(t, "activations", "weights_a", "weights_b", true)
	fa, _ := Graph(a)
	fb, _ := Graph(b)
	if fa != fb {
		t.Fatalf("input names changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestRepeatedHashingIsStable(t *testing.T) {
	g := buildTwoMatmul(t, "x", "w1", "w2", false)
	f0, err := Graph(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		f, err := Graph(g)
		if err != nil {
			t.Fatal(err)
		}
		if f != f0 {
			t.Fatalf("run %d: fingerprint not stable: %s vs %s", i, f, f0)
		}
	}
}

func TestTransposedOperandsDiffer(t *testing.T) {
	build := func(swap bool) *tensor.Graph {
		b := tensor.NewBuilder()
		x := b.Input("x", 64, 64)
		w := b.Weight("w", 64, 64)
		var m *tensor.Node
		if swap {
			m = b.Matmul(tensor.ActNone, w, x)
		} else {
			m = b.Matmul(tensor.ActNone, x, w)
		}
		g, err := b.Finish(m)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	fa, _ := Graph(build(false))
	fb, _ := Graph(build(true))
	if fa == fb {
		t.Fatalf("transposed matmul operands collide: %s", fa)
	}
}

func TestDistinctStructuresDiffer(t *testing.T) {
	b1 := tensor.NewBuilder()
	x := b1.Input("x", 8, 8)
	g1, err := b1.Finish(b1.Relu(x))
	if err != nil {
		t.Fatal(err)
	}
	b2 := tensor.NewBuilder()
	y := b2.Input("x", 8, 8)
	g2, err := b2.Finish(b2.Tanh(y))
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := Graph(g1)
	fb, _ := Graph(g2)
	if fa == fb {
		t.Fatal("relu and tanh graphs collide")
	}
}

func TestShapeMatters(t *testing.T) {
	build := func(d int) *tensor.Graph {
		b := tensor.NewBuilder()
		g, err := b.Finish(b.Relu(b.Input("x", 8, d)))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	fa, _ := Graph(build(8))
	fb, _ := Graph(build(16))
	if fa == fb {
		t.Fatal("shapes do not influence the fingerprint")
	}
}

func TestSharingMatters(t *testing.T) {
	// relu(x) used twice (shared) vs two distinct-but-equal inputs: the
	// first computes one relu, the second two, so they must differ.
	shared := func() *tensor.Graph {
		b := tensor.NewBuilder()
		r := b.Relu(b.Input("x", 8, 8))
		g, err := b.Finish(b.Ewadd(r, r))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	split := func() *tensor.Graph {
		b := tensor.NewBuilder()
		r1 := b.Relu(b.Input("x", 8, 8))
		r2 := b.Relu(b.Input("y", 8, 8))
		g, err := b.Finish(b.Ewadd(r1, r2))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	fa, _ := Graph(shared())
	fb, _ := Graph(split())
	if fa == fb {
		t.Fatal("shared subgraph and duplicated subgraph collide")
	}
}

func TestOutputOrderMatters(t *testing.T) {
	build := func(swap bool) *tensor.Graph {
		b := tensor.NewBuilder()
		x := b.Input("x", 8, 8)
		r, s := b.Relu(x), b.Sigmoid(x)
		if swap {
			r, s = s, r
		}
		g, err := b.Finish(r, s)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	fa, _ := Graph(build(false))
	fb, _ := Graph(build(true))
	if fa == fb {
		t.Fatal("output order does not influence the fingerprint")
	}
}

func TestRoundTripThroughWireFormat(t *testing.T) {
	g := buildTwoMatmul(t, "x", "w1", "w2", false)
	data, err := g.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	back, err := tensor.UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := Graph(g)
	fb, _ := Graph(back)
	if fa != fb {
		t.Fatalf("wire-format round trip changed the fingerprint: %s vs %s", fa, fb)
	}
}

func TestNilGraph(t *testing.T) {
	if _, err := Graph(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestKey covers the cache-key folding: deterministic, sensitive to
// every component, and unambiguous at component boundaries (a profile
// hash can never bleed into the options encoding).
func TestKey(t *testing.T) {
	if Key("a", "b", "c") != Key("a", "b", "c") {
		t.Error("Key is not deterministic")
	}
	if Key("a", "bc") == Key("ab", "c") {
		t.Error("component boundaries are ambiguous")
	}
	if Key("a", "b") == Key("a", "b", "") {
		t.Error("an empty trailing component is invisible")
	}
	if Key("a", "b", "c") == Key("a", "b", "d") {
		t.Error("last component does not participate")
	}
	if len(Key("x")) != 64 {
		t.Errorf("Key length %d, want 64 hex chars", len(Key("x")))
	}
}
