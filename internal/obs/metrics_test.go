package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	// <=1: {0.5, 1}; <=5: +{3}; <=10: +{7}; +Inf: +{100}
	want := []uint64{2, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if count != 5 || sum != 111.5 {
		t.Fatalf("count=%d sum=%v, want 5, 111.5", count, sum)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(3)
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(1.5)
	cv := r.CounterVec("test_labeled_total", "labeled", "ruleset")
	cv.With(`quo"te\back` + "\nline").Inc()
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	r.GaugeFunc("test_func", "computed", func() float64 { return 42 })

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total a counter\n# TYPE test_total counter\ntest_total 3\n",
		"# TYPE test_gauge gauge\ntest_gauge 1.5\n",
		`test_labeled_total{ruleset="quo\"te\\back\nline"} 1` + "\n",
		`test_seconds_bucket{le="0.1"} 1` + "\n",
		`test_seconds_bucket{le="1"} 1` + "\n",
		`test_seconds_bucket{le="+Inf"} 2` + "\n",
		"test_seconds_sum 5.05\n",
		"test_seconds_count 2\n",
		"test_func 42\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "")
	mustPanic("duplicate", func() { r.Counter("ok_total", "") })
	mustPanic("bad name", func() { r.Counter("0bad", "") })
	mustPanic("bad name dash", func() { r.Counter("has-dash", "") })
	mustPanic("no labels", func() { r.CounterVec("vec_total", "") })
	mustPanic("bad label", func() { r.CounterVec("vec2_total", "", "__reserved") })
	mustPanic("bad bounds", func() { r.Histogram("h_seconds", "", []float64{1, 1}) })
	cv := r.CounterVec("cv_total", "", "a", "b")
	mustPanic("label arity", func() { cv.With("only-one") })
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		3:            "3",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spin_total", "")
	hv := r.HistogramVec("spin_seconds", "", []float64{0.01, 0.1}, "phase")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					hv.With("explore").Observe(0.02)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
