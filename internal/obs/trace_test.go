package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	tr := NewTrace("optimize")
	tr.Begin("explore")
	tr.Begin("iteration")
	tr.Attr("iteration", 0)
	tr.Event("incumbent", 12.5)
	time.Sleep(time.Millisecond)
	tr.End() // iteration
	tr.Attr("iterations", 1)
	tr.End() // explore
	root := tr.Close()

	if root == nil || root.Name != "optimize" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "explore" {
		t.Fatalf("children = %+v", root.Children)
	}
	explore := root.Children[0]
	if explore.Attrs["iterations"] != 1 {
		t.Fatalf("explore attrs = %v", explore.Attrs)
	}
	if len(explore.Children) != 1 {
		t.Fatalf("explore children = %+v", explore.Children)
	}
	iter := explore.Children[0]
	if iter.Duration <= 0 {
		t.Fatalf("iteration duration = %v", iter.Duration)
	}
	if iter.Duration > explore.Duration || explore.Duration > root.Duration {
		t.Fatalf("durations not nested: iter=%v explore=%v root=%v",
			iter.Duration, explore.Duration, root.Duration)
	}
	if len(iter.Events) != 1 || iter.Events[0].Name != "incumbent" || iter.Events[0].Value != 12.5 {
		t.Fatalf("events = %+v", iter.Events)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Begin("x")
	tr.Attr("k", 1)
	tr.Event("e", 2)
	tr.End()
	if tr.Close() != nil {
		t.Fatal("nil trace Close should return nil")
	}
}

func TestTraceCloseForceEndsOpenSpans(t *testing.T) {
	tr := NewTrace("root")
	tr.Begin("a")
	tr.Begin("b")
	root := tr.Close()
	a := root.Children[0]
	b := a.Children[0]
	if a.Duration < b.Duration {
		t.Fatalf("parent shorter than child: a=%v b=%v", a.Duration, b.Duration)
	}
	// Recording after Close is a no-op.
	tr.Begin("late")
	tr.Attr("late", 1)
	if len(root.Children) != 1 {
		t.Fatalf("post-Close Begin mutated tree: %+v", root.Children)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace("optimize")
	tr.Begin("explore")
	tr.Attr("enodes", 100)
	tr.Event("incumbent", 3.5)
	tr.End()
	root := tr.Close()

	var b strings.Builder
	if err := WriteChromeTrace(&b, root); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	// optimize X, explore X, incumbent i.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %s", len(events), b.String())
	}
	var sawComplete, sawInstant bool
	for _, e := range events {
		switch e["ph"] {
		case "X":
			sawComplete = true
			if _, ok := e["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", e)
			}
		case "i":
			sawInstant = true
			if e["name"] != "incumbent" {
				t.Errorf("instant event = %v", e)
			}
		}
	}
	if !sawComplete || !sawInstant {
		t.Fatalf("missing event kinds in %s", b.String())
	}

	// Nil root is an empty, still-valid array.
	b.Reset()
	if err := WriteChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("nil root = %q", b.String())
	}
}
