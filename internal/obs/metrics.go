// Package obs provides the dependency-free observability primitives
// the tensat pipeline and serving layer report through: counters,
// gauges and histograms with a Prometheus text-exposition writer
// (this file), and phase-span traces with a Chrome trace-event
// exporter readable by Perfetto (trace.go).
//
// The package deliberately implements the small subset of the
// Prometheus client model the repository needs — no default registry,
// no process/Go runtime collectors, no protobuf exposition — so the
// serving layer stays free of external dependencies while any
// Prometheus-compatible scraper can consume GET /metrics.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the current value
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets, Prometheus
// style: bucket i counts observations <= bounds[i], and an implicit
// +Inf bucket counts everything. Construct via Registry.Histogram.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds, +Inf excluded

	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative), len(bounds)+1: last is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts (one per bound, +Inf
// last), the sum, and the count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// LatencyBuckets spans the pipeline's phase durations, from
// sub-millisecond rebuilds on test graphs to hour-long ILP solves.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 900, 1800, 3600,
}

// labeled pairs one rendered label set with its child metric.
type labeled[T any] struct {
	labels string // pre-rendered {k="v",...} body, escaped, no braces
	child  T
}

// vec is the shared labels→child machinery of CounterVec and friends.
type vec[T any] struct {
	keys []string
	make func() T

	mu       sync.Mutex
	children map[string]*labeled[T]
}

func newVec[T any](keys []string, make func() T) *vec[T] {
	return &vec[T]{keys: keys, make: make, children: map[string]*labeled[T]{}}
}

func (v *vec[T]) with(values ...string) T {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: vector expects %d label values (%v), got %d", len(v.keys), v.keys, len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.child
	}
	var b strings.Builder
	for i, k := range v.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	c := &labeled[T]{labels: b.String(), child: v.make()}
	v.children[key] = c
	return c.child
}

// sorted snapshots the children in deterministic (label) order.
func (v *vec[T]) sorted() []*labeled[T] {
	v.mu.Lock()
	out := make([]*labeled[T], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ v *vec[*Counter] }

// With returns the counter for the given label values (created on
// first use). The number of values must match the declared label keys.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values...) }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ v *vec[*Gauge] }

// With returns the gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values...) }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	bounds []float64
	v      *vec[*Histogram]
}

// With returns the histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values...) }

// family is one registered metric family: a name, help text, a type,
// and a writer that renders its current samples.
type family struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	emit func(w *bufio.Writer)
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Registration methods panic
// on an invalid or duplicate name — metric registration is programmer
// intent, not runtime input. A Registry is safe for concurrent
// registration, updates, and scrapes.
type Registry struct {
	mu       sync.Mutex
	families []*family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name, help, typ string, emit func(w *bufio.Writer)) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric name " + strconv.Quote(name))
	}
	r.names[name] = true
	r.families = append(r.families, &family{name: name, help: help, typ: typ, emit: emit})
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(w *bufio.Writer) {
		writeSample(w, name, "", float64(c.Value()))
	})
	return c
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	validateLabels(name, labels)
	cv := &CounterVec{v: newVec(labels, func() *Counter { return &Counter{} })}
	r.register(name, help, "counter", func(w *bufio.Writer) {
		for _, c := range cv.v.sorted() {
			writeSample(w, name, c.labels, float64(c.child.Value()))
		}
	})
	return cv
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(w *bufio.Writer) {
		writeSample(w, name, "", g.Value())
	})
	return g
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	validateLabels(name, labels)
	gv := &GaugeVec{v: newVec(labels, func() *Gauge { return &Gauge{} })}
	r.register(name, help, "gauge", func(w *bufio.Writer) {
		for _, c := range gv.v.sorted() {
			writeSample(w, name, c.labels, c.child.Value())
		}
	})
	return gv
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural fit for quantities another structure already owns (cache
// population, store occupancy). fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", func(w *bufio.Writer) {
		writeSample(w, name, "", fn())
	})
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(name, help, "histogram", func(w *bufio.Writer) {
		writeHistogram(w, name, "", h)
	})
	return h
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	validateLabels(name, labels)
	hv := &HistogramVec{bounds: bounds, v: newVec(labels, func() *Histogram { return newHistogram(bounds) })}
	r.register(name, help, "histogram", func(w *bufio.Writer) {
		for _, c := range hv.v.sorted() {
			writeHistogram(w, name, c.labels, c.child)
		}
	})
	return hv
}

// WriteTo renders every family in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.emit(bw)
	}
	err := bw.Flush()
	if cw.err != nil {
		err = cw.err
	}
	return cw.n, err
}

// ServeHTTP makes the registry a scrape endpoint: GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err != nil && c.err == nil {
		c.err = err
	}
	return n, err
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	cum, sum, count := h.snapshot()
	for i, bound := range h.bounds {
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatValue(bound)+`"`), float64(cum[i]))
	}
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum[len(cum)-1]))
	writeSample(w, name+"_sum", labels, sum)
	writeSample(w, name+"_count", labels, float64(count))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatValue renders a sample value: shortest round-trip decimal,
// with the spellings Prometheus expects for the special values.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and line-feed.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes help text: backslash and line-feed.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// validMetricName reports whether name matches the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validateLabels(metric string, labels []string) {
	if len(labels) == 0 {
		panic("obs: vector metric " + strconv.Quote(metric) + " needs at least one label")
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if !validLabelName(l) {
			panic("obs: invalid label name " + strconv.Quote(l) + " on " + metric)
		}
		if seen[l] {
			panic("obs: duplicate label name " + strconv.Quote(l) + " on " + metric)
		}
		seen[l] = true
	}
}
