package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one timed phase of a run: a name, an offset from the trace
// origin, a duration, integer attributes (sizes, deltas, counts),
// point-in-time events, and child spans. Spans form a tree rooted at
// the span returned by Trace.Close; after Close the tree is immutable
// and safe to share between goroutines.
type Span struct {
	Name     string
	Start    time.Duration // offset from the trace origin
	Duration time.Duration
	Attrs    map[string]int64
	Events   []Event
	Children []*Span

	end time.Duration // set by Trace.end; zero while open
}

// Event is a point-in-time marker inside a span, such as an ILP
// incumbent improvement carrying the new cost.
type Event struct {
	Name  string
	At    time.Duration // offset from the trace origin
	Value float64
}

// Trace records a tree of spans as a run executes. A nil *Trace is a
// valid no-op recorder — every method is nil-receiver-safe — so
// instrumented code calls tr.Begin/End/Attr/Event unconditionally and
// pays only a nil check when tracing is off. A non-nil Trace is safe
// for use from one goroutine at a time per span stack; the pipeline
// records from its driver goroutine.
type Trace struct {
	origin time.Time

	mu    sync.Mutex
	root  *Span
	stack []*Span // open spans, root first
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{origin: time.Now()}
	t.root = &Span{Name: name}
	t.stack = []*Span{t.root}
	return t
}

func (t *Trace) now() time.Duration { return time.Since(t.origin) }

// Begin opens a child span under the innermost open span.
func (t *Trace) Begin(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return // trace already closed
	}
	s := &Span{Name: name, Start: t.now()}
	parent := t.stack[len(t.stack)-1]
	parent.Children = append(parent.Children, s)
	t.stack = append(t.stack, s)
}

// End closes the innermost open span. Ending the root is a no-op;
// the root closes in Close.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) <= 1 {
		return
	}
	s := t.stack[len(t.stack)-1]
	s.end = t.now()
	s.Duration = s.end - s.Start
	t.stack = t.stack[:len(t.stack)-1]
}

// Attr sets an integer attribute on the innermost open span.
func (t *Trace) Attr(key string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return
	}
	s := t.stack[len(t.stack)-1]
	if s.Attrs == nil {
		s.Attrs = map[string]int64{}
	}
	s.Attrs[key] = v
}

// Event records a point-in-time event on the innermost open span.
func (t *Trace) Event(name string, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.stack) == 0 {
		return
	}
	s := t.stack[len(t.stack)-1]
	s.Events = append(s.Events, Event{Name: name, At: t.now(), Value: value})
}

// Close force-ends any open spans (innermost first), closes the root,
// and returns the finished tree. Returns nil on a nil Trace. After
// Close, further recording calls are no-ops.
func (t *Trace) Close() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for i := len(t.stack) - 1; i >= 0; i-- {
		s := t.stack[i]
		s.end = now
		s.Duration = s.end - s.Start
	}
	t.stack = nil
	return t.root
}

// WriteChromeTrace renders a finished span tree in the Chrome
// trace-event JSON format (an array of "X" complete events plus "i"
// instant events, timestamps in microseconds), which Perfetto and
// chrome://tracing open directly. A nil root writes an empty array.
func WriteChromeTrace(w io.Writer, root *Span) error {
	bw := bufio.NewWriter(w)
	bw.WriteByte('[')
	first := true
	var walk func(s *Span)
	var werr error
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		if _, err := fmt.Fprintf(bw, format, args...); err != nil && werr == nil {
			werr = err
		}
	}
	walk = func(s *Span) {
		emit(`{"name":%s,"ph":"X","ts":%d,"dur":%d,"pid":1,"tid":1%s}`,
			strconv.Quote(s.Name), s.Start.Microseconds(), s.Duration.Microseconds(), chromeArgs(s.Attrs))
		for _, e := range s.Events {
			emit(`{"name":%s,"ph":"i","ts":%d,"pid":1,"tid":1,"s":"t","args":{"value":%s}}`,
				strconv.Quote(e.Name), e.At.Microseconds(), formatValue(e.Value))
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	if root != nil {
		walk(root)
	}
	bw.WriteString("]\n")
	if err := bw.Flush(); err != nil {
		return err
	}
	return werr
}

func chromeArgs(attrs map[string]int64) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := `,"args":{`
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += strconv.Quote(k) + ":" + strconv.FormatInt(attrs[k], 10)
	}
	return s + "}"
}
