package tensat

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRules(t *testing.T, name, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// A shape-unsound rule must be rejected at load time regardless of
// vet mode (except RuleVetOff): transpose changes the shape, so the
// target cannot equal the source.
func TestLoadRuleFileRejectsShapeUnsound(t *testing.T) {
	path := writeRules(t, "bad.rules", "droppose: (transpose ?x \"1 0\") => ?x\n")

	r := NewRegistry()
	if _, err := r.LoadRuleFile(path); err == nil {
		t.Fatal("shape-unsound rule file loaded without error")
	} else if !strings.Contains(err.Error(), "shape-unsound") {
		t.Fatalf("error should carry the finding class: %v", err)
	}
	if _, ok := r.RuleSet("bad"); ok {
		t.Fatal("registry registered a rejected rule set")
	}

	// RuleVetOff is the escape hatch: the same file loads.
	r.SetRuleVetMode(RuleVetOff)
	if _, err := r.LoadRuleFile(path); err != nil {
		t.Fatalf("RuleVetOff should skip vetting: %v", err)
	}
}

// A rule whose variable is used with conflicting kinds can never fire;
// the default mode records the warning and loads the set anyway, the
// strict mode fails the load.
func TestLoadRuleFileVetWarnings(t *testing.T) {
	path := writeRules(t, "warn.rules", "never: (ewadd (relu ?x) (split0 ?x)) => (relu ?x)\n")

	r := NewRegistry()
	info, err := r.LoadRuleFile(path)
	if err != nil {
		t.Fatalf("warn mode must load anyway: %v", err)
	}
	if len(info.VetWarnings) != 1 || !strings.Contains(info.VetWarnings[0], "no-witness") {
		t.Fatalf("VetWarnings = %v, want one no-witness finding", info.VetWarnings)
	}
	// The recorded info is queryable after the fact, too.
	got, ok := r.RuleSetInfo("warn")
	if !ok || len(got.VetWarnings) != 1 {
		t.Fatalf("RuleSetInfo(warn) = %+v, %v", got, ok)
	}

	strict := NewRegistry()
	strict.SetRuleVetMode(RuleVetStrict)
	if _, err := strict.LoadRuleFile(path); err == nil {
		t.Fatal("strict mode must fail the load on warnings")
	}
	if _, ok := strict.RuleSet("warn"); ok {
		t.Fatal("strict registry registered a rejected rule set")
	}
}

// LoadRulesDir stays atomic with vetting in the pipeline: one unsound
// file leaves the whole directory unloaded.
func TestLoadRulesDirVetAtomic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "aaa.rules"),
		[]byte("ok: (ewadd ?x ?y) => (ewadd ?y ?x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zzz.rules"),
		[]byte("droppose: (transpose ?x \"1 0\") => ?x\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	if _, err := r.LoadRulesDir(dir); err == nil {
		t.Fatal("directory with an unsound file loaded without error")
	}
	if _, ok := r.RuleSet("aaa"); ok {
		t.Fatal("atomicity broken: the sound sibling was registered")
	}
}

// The shipped profile directory must load warning-free under the
// default (vetting) mode — the end-to-end guarantee vet-rules checks
// in CI.
func TestLoadShippedProfilesVetClean(t *testing.T) {
	r := NewRegistry()
	infos, err := r.LoadRulesDir(filepath.Join("profiles", "rules"))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if len(info.VetWarnings) != 0 {
			t.Errorf("%s: unexpected vet warnings: %v", info.Name, info.VetWarnings)
		}
	}
}
