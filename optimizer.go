package tensat

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/ilp/backend"
	"tensat/internal/obs"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
)

// Phase identifies where in the pipeline a job currently is.
type Phase string

const (
	// PhaseQueued means the job was accepted but optimization has not
	// started yet (e.g. it is waiting for a worker slot).
	PhaseQueued Phase = "queued"
	// PhaseExplore is the equality-saturation exploration phase.
	PhaseExplore Phase = "explore"
	// PhaseExtract is the extraction phase (greedy or ILP).
	PhaseExtract Phase = "extract"
	// PhaseDone, PhaseCanceled and PhaseFailed are terminal.
	PhaseDone     Phase = "done"
	PhaseCanceled Phase = "canceled"
	PhaseFailed   Phase = "failed"
)

// Terminal reports whether the phase is a final state.
func (p Phase) Terminal() bool {
	return p == PhaseDone || p == PhaseCanceled || p == PhaseFailed
}

// Progress is a point-in-time snapshot of a running optimization job.
// During PhaseExplore the e-graph sizes grow with each iteration;
// during PhaseExtract, BestCost tracks the ILP incumbent (the anytime
// answer the job would return if stopped now).
type Progress struct {
	Phase Phase
	// Iteration counts completed exploration iterations.
	Iteration int
	// ENodes and EClasses are the e-graph sizes at the snapshot.
	ENodes, EClasses int
	// BestCost is the cost of the best extraction found so far; zero
	// until the extractor reports a first incumbent.
	BestCost float64
	// Elapsed is the time since the job was submitted. For a terminal
	// snapshot it is frozen at the job's total runtime.
	Elapsed time.Duration
}

// Optimizer runs the TENSAT pipeline repeatedly with a rule set and
// cost model that are compiled once and shared by every submitted job.
// Construct with NewOptimizer and reuse freely: an Optimizer is safe
// for concurrent Submit calls. The zero value is not usable.
//
// Optimize and OptimizeContext remain as one-shot shims over this
// type; services or tools optimizing more than one graph should hold
// one Optimizer so the rule patterns are not re-parsed per call.
type Optimizer struct {
	userRules []*Rule
	model     CostModel
	base      Options
	registry  *Registry

	rulesOnce sync.Once
	rules     []*Rule
	compiled  *rewrite.CompiledRules
}

// OptimizerOption configures NewOptimizer.
type OptimizerOption func(*Optimizer)

// WithRules sets the rewrite rule set shared by all jobs (nil keeps
// the default TASO-style set, compiled lazily on first use).
func WithRules(rs []*Rule) OptimizerOption {
	return func(o *Optimizer) { o.userRules = rs }
}

// WithCostModel sets the cost model shared by all jobs (nil keeps the
// simulated T4 default).
func WithCostModel(m CostModel) OptimizerOption {
	return func(o *Optimizer) { o.model = m }
}

// WithBaseOptions sets the option template jobs inherit: any zero
// field of the Options passed to Submit falls back to this template
// before the paper defaults apply.
func WithBaseOptions(base Options) OptimizerOption {
	return func(o *Optimizer) { o.base = base }
}

// WithRegistry sets the profile registry that resolves Options.RuleSet
// and Options.CostModelName (nil keeps DefaultRegistry). Registry
// entries are compiled at registration, so per-job resolution is a map
// lookup — the per-profile generalization of the optimizer's old
// compile-once behavior.
func WithRegistry(r *Registry) OptimizerOption {
	return func(o *Optimizer) { o.registry = r }
}

// NewOptimizer builds a reusable Optimizer.
func NewOptimizer(opts ...OptimizerOption) *Optimizer {
	o := &Optimizer{}
	for _, apply := range opts {
		apply(o)
	}
	if o.model == nil {
		o.model = cost.NewT4()
	}
	return o
}

// Registry returns the profile registry this optimizer resolves
// Options.RuleSet and Options.CostModelName against.
func (o *Optimizer) Registry() *Registry { return o.reg() }

// reg resolves the registry lazily, so an optimizer that never names a
// profile (and brings its own rules) never compiles the built-ins.
func (o *Optimizer) reg() *Registry {
	if o.registry != nil {
		return o.registry
	}
	return DefaultRegistry()
}

// ruleSet resolves the optimizer-default rule set exactly once (the
// registry's taso-default entry, or the WithRules override), used by
// jobs that name no profile and bring no rules of their own. Named
// rule sets (Options.RuleSet) bypass this and hit the registry, where
// each set was compiled at registration.
func (o *Optimizer) ruleSet() ([]*Rule, *rewrite.CompiledRules) {
	o.rulesOnce.Do(func() {
		if o.userRules != nil {
			o.rules = o.userRules
			o.compiled = rewrite.CompileRules(o.rules)
			return
		}
		if rs, ok := o.reg().RuleSet(DefaultRuleSetName); ok {
			o.rules = rs
			o.compiled, _ = o.reg().compiledRuleSet(DefaultRuleSetName)
			return
		}
		o.rules = rules.Default()
		o.compiled = rewrite.CompileRules(o.rules)
	})
	return o.rules, o.compiled
}

// resolve fills the zero fields of opt from the optimizer's base
// template, then from the paper defaults, mirroring what the original
// Optimize entry point did. The rule set and cost model each inherit
// as one unit — object plus profile name — so a base template's
// named profile cannot leak under a job's explicit object (or vice
// versa).
func (o *Optimizer) resolve(opt Options) Options {
	b := o.base
	if opt.Rules == nil && opt.RuleSet == "" {
		opt.Rules = b.Rules
		opt.RuleSet = b.RuleSet
	}
	if opt.CostModel == nil && opt.CostModelName == "" {
		opt.CostModel = b.CostModel
		opt.CostModelName = b.CostModelName
	}
	if opt.NodeLimit == 0 {
		opt.NodeLimit = b.NodeLimit
	}
	if opt.IterLimit == 0 {
		opt.IterLimit = b.IterLimit
	}
	if opt.KMulti == 0 {
		opt.KMulti = b.KMulti
	}
	if opt.ExploreTimeout == 0 {
		opt.ExploreTimeout = b.ExploreTimeout
	}
	if opt.Workers == 0 {
		opt.Workers = b.Workers
	}
	if opt.ILPTimeout == 0 {
		opt.ILPTimeout = b.ILPTimeout
	}
	if opt.ILPSolver == "" {
		opt.ILPSolver = b.ILPSolver
	}
	if !opt.Trace {
		opt.Trace = b.Trace
	}
	def := DefaultOptions()
	if opt.NodeLimit == 0 {
		opt.NodeLimit = def.NodeLimit
	}
	if opt.IterLimit == 0 {
		opt.IterLimit = def.IterLimit
	}
	if opt.ILPTimeout == 0 {
		opt.ILPTimeout = def.ILPTimeout
	}
	return opt
}

// Job is one asynchronous optimization submitted to an Optimizer. All
// methods are safe for concurrent use from any goroutine.
type Job struct {
	cancel context.CancelFunc
	done   chan struct{}
	start  time.Time

	mu   sync.Mutex
	prog Progress

	// res and err are written exactly once before done is closed.
	res *Result
	err error
}

// Progress returns the latest snapshot. Until the job reaches a
// terminal phase, Elapsed is recomputed at call time so pollers see
// time advance even between pipeline events.
func (j *Job) Progress() Progress {
	j.mu.Lock()
	p := j.prog
	j.mu.Unlock()
	if !p.Phase.Terminal() {
		p.Elapsed = time.Since(j.start)
	}
	return p
}

// Done returns a channel closed when the job reaches a terminal phase.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result blocks until the job finishes and returns its outcome. A
// canceled job returns the context's error.
func (j *Job) Result() (*Result, error) {
	<-j.done
	return j.res, j.err
}

// Err returns the job's error without blocking: nil while running or
// after success, the failure otherwise.
func (j *Job) Err() error {
	select {
	case <-j.done:
		return j.err
	default:
		return nil
	}
}

// Cancel aborts the job. Exploration stops at its next check point
// and the pipeline unwinds with context.Canceled; canceling a finished
// job is a no-op.
func (j *Job) Cancel() { j.cancel() }

// record updates the snapshot and forwards it to the user sink (called
// serially from the job's goroutine; sink runs outside the lock so it
// may call back into Progress).
func (j *Job) record(p Progress, sink func(Progress)) {
	p.Elapsed = time.Since(j.start)
	j.mu.Lock()
	j.prog = p
	j.mu.Unlock()
	if sink != nil {
		sink(p)
	}
}

// finish publishes the outcome, records the terminal snapshot, and
// releases the waiters.
func (j *Job) finish(res *Result, err error, sink func(Progress)) {
	j.mu.Lock()
	p := j.prog
	j.mu.Unlock()
	switch {
	case err == nil:
		p.Phase = PhaseDone
		p.Iteration = res.Iterations
		p.ENodes, p.EClasses = res.ENodes, res.EClasses
		p.BestCost = res.OptCost
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		p.Phase = PhaseCanceled
	default:
		p.Phase = PhaseFailed
	}
	p.Elapsed = time.Since(j.start)
	j.mu.Lock()
	j.prog = p
	j.mu.Unlock()
	if sink != nil {
		sink(p)
	}
	j.res, j.err = res, err
	close(j.done)
	j.cancel() // release the job context's resources
}

// Submit starts an asynchronous optimization of g and returns its Job
// handle immediately. The job runs until completion, cancellation of
// ctx, or Job.Cancel. opts follows the same zero-means-default rules
// as Optimize, with the optimizer's WithBaseOptions template applied
// first; opts.Rules and opts.CostModel override the optimizer's
// compiled set for this job only.
func (o *Optimizer) Submit(ctx context.Context, g *Graph, opts Options) (*Job, error) {
	if g == nil {
		return nil, fmt.Errorf("tensat: nil graph")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = o.resolve(opts)
	// Validate profile names now, so a typo fails the submission with a
	// client error instead of a dead job.
	if opts.Rules == nil && opts.RuleSet != "" {
		if _, ok := o.reg().RuleSet(opts.RuleSet); !ok {
			return nil, fmt.Errorf("%w: rule set %q (known: %s)",
				ErrUnknownProfile, opts.RuleSet, strings.Join(o.reg().RuleSetNames(), ", "))
		}
	}
	if opts.CostModel == nil && opts.CostModelName != "" {
		if _, ok := o.reg().CostModel(opts.CostModelName); !ok {
			return nil, fmt.Errorf("%w: cost model %q (known: %s)",
				ErrUnknownProfile, opts.CostModelName, strings.Join(o.reg().CostModelNames(), ", "))
		}
	}
	if !backend.Valid(opts.ILPSolver) {
		return nil, fmt.Errorf("tensat: unknown ILP solver %q (known: %s)",
			opts.ILPSolver, strings.Join(backend.Names(), ", "))
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		cancel: cancel,
		done:   make(chan struct{}),
		start:  time.Now(),
		prog:   Progress{Phase: PhaseQueued},
	}
	go func() {
		res, err := o.runRecover(jctx, g, opts, func(p Progress) { j.record(p, opts.Progress) })
		j.finish(res, err, opts.Progress)
	}()
	return j, nil
}

// PanicError is what a job that panicked mid-pipeline fails with: the
// recovered value plus the goroutine stack at the point of the panic.
// A buggy rewrite rule or cost model fails its own job this way
// instead of killing the process; serving layers map it to a 500-class
// internal error and must never cache the job as a result.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("tensat: internal panic: %v", e.Value)
}

// runRecover is run with a panic barrier: every Submit-spawned job
// goroutine goes through it, so a panic anywhere in exploration or
// extraction becomes a PanicError on the job rather than a crash.
func (o *Optimizer) runRecover(ctx context.Context, g *Graph, opt Options, sink func(Progress)) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return o.run(ctx, g, opt, sink)
}

// run executes the full pipeline (exploration, then extraction),
// reporting each stage through sink. It is the engine behind both
// Submit and the synchronous Optimize shims.
func (o *Optimizer) run(ctx context.Context, g *Graph, opt Options, sink func(Progress)) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Resolution order for each profile half: an explicit object on the
	// Options, then a registry name, then the optimizer's own default.
	// Named and default rule sets carry their registration-time pattern
	// compilation; per-job Rules objects are compiled by the runner.
	ruleset := opt.Rules
	var compiled *rewrite.CompiledRules
	if ruleset == nil && opt.RuleSet != "" {
		if rs, ok := o.reg().RuleSet(opt.RuleSet); ok {
			ruleset = rs
			compiled, _ = o.reg().compiledRuleSet(opt.RuleSet)
		}
	}
	if ruleset == nil {
		ruleset, compiled = o.ruleSet()
	}
	model := opt.CostModel
	if model == nil && opt.CostModelName != "" {
		if m, ok := o.reg().CostModel(opt.CostModelName); ok {
			model = m
		}
	}
	if model == nil {
		model = o.model
	}

	// One trace serves the whole run; nil when tracing is off, which
	// every recording call tolerates at the cost of a nil check.
	var tr *obs.Trace
	if opt.Trace {
		tr = obs.NewTrace("optimize")
	}

	runner := rewrite.NewRunner(ruleset)
	runner.Compiled = compiled
	runner.Trace = tr
	runner.Limits = rewrite.Limits{
		MaxNodes: opt.NodeLimit,
		MaxIters: opt.IterLimit,
		KMulti:   opt.KMulti,
		Timeout:  opt.ExploreTimeout,
	}
	runner.Workers = opt.Workers
	if sink != nil {
		runner.Progress = func(iteration, enodes, eclasses int) {
			sink(Progress{
				Phase:     PhaseExplore,
				Iteration: iteration,
				ENodes:    enodes,
				EClasses:  eclasses,
			})
		}
	}
	switch opt.CycleFilter {
	case FilterVanilla:
		runner.Filter = rewrite.FilterVanilla
	case FilterNone:
		runner.Filter = rewrite.FilterNone
	default:
		runner.Filter = rewrite.FilterEfficient
	}
	// ExploreTimeout stays the runner's soft budget (Limits.Timeout,
	// set above): expiry keeps the partial e-graph. The caller's ctx is
	// the hard stop — both flow into RunContext, whose Stats
	// distinguish HitTimeout from Canceled.
	ex, err := runner.RunContext(ctx, g)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if sink != nil {
		sink(Progress{
			Phase:     PhaseExtract,
			Iteration: ex.Stats.Iterations,
			ENodes:    ex.Stats.ENodes,
			EClasses:  ex.Stats.EClasses,
		})
	}
	var res *extract.Result
	tr.Begin("extract")
	switch opt.Extractor {
	case ExtractGreedy:
		tr.Begin("greedy")
		res, err = extract.GreedyContext(ctx, ex, model)
		tr.End()
	default:
		topo := ilp.TopoReal
		if opt.TopoInt {
			topo = ilp.TopoInt
		}
		ilpOpts := extract.ILPOptions{
			CycleConstraints: opt.CycleFilter == FilterNone,
			TopoMode:         topo,
			Timeout:          opt.ILPTimeout,
			Solver:           opt.ILPSolver,
			Trace:            tr,
		}
		if sink != nil {
			ilpOpts.OnIncumbent = func(cost float64) {
				sink(Progress{
					Phase:     PhaseExtract,
					Iteration: ex.Stats.Iterations,
					ENodes:    ex.Stats.ENodes,
					EClasses:  ex.Stats.EClasses,
					BestCost:  cost,
				})
			}
		}
		res, err = extract.ILPContext(ctx, ex, model, ilpOpts)
	}
	tr.End() // extract
	if err != nil {
		// Cancellation needs no special-casing here: the ILP solver
		// surfaces a pre-incumbent cancellation as the context's own
		// error (wrapped, so errors.Is still classifies it), reserving
		// ErrTimeout for its deadline and stall budgets.
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	orig := cost.GraphCost(model, g)
	out := &Result{
		Graph:          res.Graph,
		OrigCost:       orig,
		OptCost:        res.Cost,
		SpeedupPercent: cost.SpeedupPercent(orig, res.Cost),
		ExploreTime:    ex.Stats.ExploreTime,
		ExtractTime:    res.Time,
		ApplyTime:      ex.Stats.ApplyTime,
		RebuildTime:    ex.Stats.RebuildTime,
		ENodes:         ex.Stats.ENodes,
		EClasses:       ex.Stats.EClasses,
		Iterations:     ex.Stats.Iterations,
		Saturated:      ex.Stats.Saturated,
		Truncated:      ex.Stats.HitTimeout || ex.Stats.Canceled,
		Canceled:       ex.Stats.Canceled,
		FilteredNodes:  ex.Stats.FilteredNodes,
		Search: SearchStats{
			Time:    ex.Stats.SearchTime,
			Scanned: ex.Stats.SearchScanned,
			Pruned:  ex.Stats.SearchPruned,
			Dirty:   ex.Stats.SearchDirty,
			Clean:   ex.Stats.SearchClean,
			Matches: ex.Stats.SearchMatches,
		},
	}
	if res.ILP != nil {
		out.ILPOptimal = res.ILP.Optimal
		out.ILP = ILPStats{
			Solver:     res.Solver,
			Workers:    res.ILP.Workers,
			Explored:   res.ILP.Explored,
			Incumbents: res.ILP.Incumbents,
		}
		if res.Reduction != nil {
			out.ILP.PresolveFixed = res.Reduction.VarsFixed
			out.ILP.PresolveDropped = res.Reduction.NodesDropped
			out.ILP.PresolveRemoved = res.Reduction.ConstraintsRemoved
			out.ILP.PresolveRatio = res.Reduction.Ratio()
		}
	}
	out.Trace = tr.Close()
	return out, nil
}
