// Command experiments regenerates the paper's tables and figures
// (Table 1, 3-6; Figures 4-7) on the simulated device.
//
// Usage:
//
//	experiments -all            # everything, reduced scale
//	experiments -table 5        # one table
//	experiments -fig 7          # one figure
//	experiments -all -config full   # paper-scale settings (slow)
package main

import (
	"flag"
	"fmt"
	"log"

	"tensat/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		table  = flag.Int("table", 0, "regenerate one table (1, 3, 4, 5 or 6)")
		fig    = flag.Int("fig", 0, "regenerate one figure (4, 5, 6 or 7)")
		all    = flag.Bool("all", false, "regenerate every table and figure")
		config = flag.String("config", "default", "config: default (fast) or full (paper scale)")
	)
	flag.Parse()

	cfg := exp.Default()
	if *config == "full" {
		cfg = exp.Full()
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		return
	}

	run := func(id int, enabled bool, f func() error) {
		if !enabled {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("experiment %d: %v", id, err)
		}
		fmt.Println()
	}

	run(1, *all || *table == 1, func() error {
		rows, err := cfg.Table1()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable1(rows))
		return nil
	})
	run(3, *all || *table == 3, func() error {
		rows, err := cfg.Table3()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable3(rows))
		return nil
	})
	run(4, *all || *table == 4, func() error {
		rows, err := cfg.Table4()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable4(rows))
		return nil
	})
	run(5, *all || *table == 5, func() error {
		rows, err := cfg.Table5()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable5(rows))
		return nil
	})
	run(6, *all || *table == 6, func() error {
		rows, err := cfg.Table6()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatTable6(rows))
		return nil
	})
	run(4, *all || *fig == 4, func() error {
		rows, err := cfg.Figure4()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure4(rows))
		return nil
	})
	run(5, *all || *fig == 5, func() error {
		rows, err := cfg.Figure5()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure5(rows))
		return nil
	})
	run(6, *all || *fig == 6, func() error {
		tn, ts, err := cfg.Figure6()
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure6(tn, ts))
		return nil
	})
	run(7, *all || *fig == 7, func() error {
		rows, err := cfg.Figure7(3)
		if err != nil {
			return err
		}
		fmt.Print(exp.FormatFigure7(rows))
		return nil
	})
}
