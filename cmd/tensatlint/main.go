// Command tensatlint checks this repository's project invariants with
// a multichecker of custom static analyzers:
//
//	cachekey       options structs flow every exported field into the
//	               serving cache key (or carry //lint:cachekey-exempt)
//	canonid        ClassID-keyed maps are indexed with canonicalized IDs
//	frozenview     //lint:frozen snapshot types stay read-only
//	obsdiscipline  metrics register once; Vec.With arity matches; span
//	               timing never re-reads the clock
//	ctxflow        exported looping code accepts and checks a Context
//
// Usage:
//
//	tensatlint [-run name,name] [-json] [packages]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any diagnostic is reported, 2 on usage or
// load errors — the same convention as go vet. With -json, findings
// are emitted as a JSON array of {file, line, col, analyzer, message}
// for machine consumption in CI.
//
// The checker is built on the standard library only (go/ast, go/types
// with source-based stdlib importing) so it runs in hermetic
// environments without a module proxy; see internal/analysis.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tensat/internal/analysis"
	"tensat/internal/analysis/cachekey"
	"tensat/internal/analysis/canonid"
	"tensat/internal/analysis/ctxflow"
	"tensat/internal/analysis/frozenview"
	"tensat/internal/analysis/obsdiscipline"
)

// all is the registered multichecker suite.
var all = []*analysis.Analyzer{
	cachekey.Analyzer,
	canonid.Analyzer,
	frozenview.Analyzer,
	obsdiscipline.Analyzer,
	ctxflow.Analyzer,
}

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit findings as JSON")
		listOnly = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tensatlint [-run name,name] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *listOnly {
		for _, a := range all {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tensatlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tensatlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tensatlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			pos := prog.Fset.Position(d.Pos)
			out = append(out, finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Category, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "tensatlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", prog.Fset.Position(d.Pos), d.Message, d.Category)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
