// Command tensat optimizes one of the benchmark models with the
// TENSAT pipeline and prints a report.
//
// Usage:
//
//	tensat -model NasRNN [-scale full] [-kmulti 1] [-extractor ilp]
//	       [-filter efficient] [-nodelimit 20000] [-iters 15]
//	       [-ruleset taso-default] [-costmodel t4] [-progress]
//
// With -progress, live lines trace the run as it happens: one per
// exploration iteration (e-graph growth) and one per ILP incumbent
// (the anytime answer improving). With -trace out.json, the full
// per-phase span tree (explore iterations, search/apply/rebuild,
// extraction, ILP model+solve with incumbent events) is written as
// Chrome trace-event JSON — open it in https://ui.perfetto.dev.
//
// -ruleset and -costmodel select named optimization profiles: the
// built-ins (rule sets taso-default, taso-single; devices t4, a100,
// cpu) plus anything loaded with -rules-dir (*.rules files) and
// -device-dir (*.json device specs).
//
// The vet-rules subcommand runs the static rule/profile verifier
// (internal/rulecheck) without optimizing anything:
//
//	tensat vet-rules [-json] [-strict] [-costmodel t4] <dir-or-file>...
//
// It checks the built-in rule sets plus every named .rules file or
// directory for shape-unsound rewrites, rules that can never fire,
// dead targets, and target operators the cost model cannot price.
// Exit status 1 means error findings (or any finding with -strict);
// -json emits the findings as a machine-readable array.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"tensat"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/ilp/lpfile"
	"tensat/internal/models"
	"tensat/internal/rewrite"
	"tensat/internal/tensor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tensat: ")

	// Subcommands dispatch before flag parsing; everything else is the
	// classic flag-driven optimizer run.
	if len(os.Args) > 1 && os.Args[1] == "vet-rules" {
		os.Exit(vetRulesMain(os.Args[2:]))
	}

	var (
		model     = flag.String("model", "NasRNN", "benchmark model (NasRNN, BERT, ResNeXt-50, NasNet-A, SqueezeNet, VGG-19, Inception-v3, ResNet-50)")
		load      = flag.String("load", "", "load a graph from a .sexpr file instead of -model")
		save      = flag.String("save", "", "write the optimized graph to this file")
		dot       = flag.String("dot", "", "write the optimized graph in Graphviz dot format to this file")
		scale     = flag.String("scale", "test", "model scale: test or full")
		kmulti    = flag.Int("kmulti", 1, "iterations of multi-pattern rewrites (k_multi)")
		extractor = flag.String("extractor", "ilp", "extraction algorithm: ilp or greedy")
		filter    = flag.String("filter", "efficient", "cycle filtering: efficient, vanilla or none")
		nodeLimit = flag.Int("nodelimit", 20000, "e-graph node limit (N_max)")
		iters     = flag.Int("iters", 15, "exploration iteration limit (k_max)")
		ilpTime   = flag.Duration("ilptimeout", 2*time.Minute, "ILP solver timeout")
		ilpSolver = flag.String("ilp-solver", "", "ILP backend: builtin (parallel branch-and-bound), builtin-seq, cbc or highs (external binaries on PATH)")
		ilpMPS    = flag.String("ilp-mps", "", "explore, then write the extraction ILP as a free-format MPS file and exit without solving")
		workers   = flag.Int("workers", 0, "parallel e-matching goroutines (0 = GOMAXPROCS, 1 = sequential)")
		progress  = flag.Bool("progress", false, "print live progress lines (iterations, e-graph growth, ILP incumbents) to stderr")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto or chrome://tracing)")
		ruleset   = flag.String("ruleset", "", "named rule set profile (e.g. taso-default, taso-single, or a loaded .rules file)")
		costmodel = flag.String("costmodel", "", "named device cost model (e.g. t4, a100, cpu, or a loaded device spec)")
		rulesDir  = flag.String("rules-dir", "", "load every *.rules file in this directory before resolving -ruleset")
		deviceDir = flag.String("device-dir", "", "load every *.json device spec in this directory before resolving -costmodel")
	)
	flag.Parse()

	if *workers < 0 {
		log.Fatalf("-workers must be >= 0, got %d", *workers)
	}
	registry := tensat.DefaultRegistry()
	if *rulesDir != "" {
		if _, err := registry.LoadRulesDir(*rulesDir); err != nil {
			log.Fatal(err)
		}
	}
	if *deviceDir != "" {
		if _, err := registry.LoadDevicesDir(*deviceDir); err != nil {
			log.Fatal(err)
		}
	}

	var g *tensat.Graph
	name := *model
	if *load != "" {
		data, err := os.ReadFile(*load)
		if err != nil {
			log.Fatal(err)
		}
		g, err = tensor.UnmarshalGraph(data)
		if err != nil {
			log.Fatalf("parsing %s: %v", *load, err)
		}
		name = *load
	} else {
		m, err := models.ByName(*model)
		if err != nil {
			log.Fatal(err)
		}
		s := models.ScaleTest
		if *scale == "full" {
			s = models.ScaleFull
		}
		g = m.Build(s)
	}

	opt := tensat.DefaultOptions()
	opt.KMulti = *kmulti
	opt.NodeLimit = *nodeLimit
	opt.IterLimit = *iters
	opt.ILPTimeout = *ilpTime
	opt.ILPSolver = *ilpSolver
	opt.Workers = *workers
	opt.RuleSet = *ruleset
	opt.CostModelName = *costmodel
	if *extractor == "greedy" {
		opt.Extractor = tensat.ExtractGreedy
	}
	switch *filter {
	case "vanilla":
		opt.CycleFilter = tensat.FilterVanilla
	case "none":
		opt.CycleFilter = tensat.FilterNone
	}

	if *progress {
		opt.Progress = printProgress
	}
	if *traceOut != "" {
		opt.Trace = true
	}

	// Run through the job API: Ctrl-C cancels the job cleanly instead
	// of killing the process mid-pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *ilpMPS != "" {
		if err := exportMPS(ctx, g, opt, registry, *ilpMPS); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote extraction ILP for %s to %s\n", name, *ilpMPS)
		return
	}

	job, err := tensat.NewOptimizer().Submit(ctx, g, opt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:            %s (scale=%s)\n", name, *scale)
	fmt.Printf("original cost:    %.1f us   ops: %s\n", res.OrigCost, tensor.HistogramString(g.OpHistogram()))
	fmt.Printf("optimized cost:   %.1f us   ops: %s\n", res.OptCost, tensor.HistogramString(res.Graph.OpHistogram()))
	fmt.Printf("speedup:          %.1f%%\n", res.SpeedupPercent)
	fmt.Printf("exploration:      %v  (%d iterations, %d e-nodes, %d e-classes, saturated=%v)\n",
		res.ExploreTime.Round(time.Millisecond), res.Iterations, res.ENodes, res.EClasses, res.Saturated)
	fmt.Printf("extraction:       %v  (filtered e-nodes: %d, ILP optimal: %v)\n",
		res.ExtractTime.Round(time.Millisecond), res.FilteredNodes, res.ILPOptimal)
	if res.ILP.Solver != "" {
		fmt.Printf("ilp:              solver=%s workers=%d incumbents=%d  presolve: fixed=%d dropped=%d (%.0f%% of candidates)\n",
			res.ILP.Solver, res.ILP.Workers, res.ILP.Incumbents,
			res.ILP.PresolveFixed, res.ILP.PresolveDropped, res.ILP.PresolveRatio*100)
	}

	if err := res.Graph.Validate(); err != nil {
		log.Fatalf("optimized graph failed validation: %v", err)
	}
	if *save != "" {
		data, err := res.Graph.MarshalText()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved optimized graph to %s\n", *save)
	}
	if *dot != "" {
		if err := os.WriteFile(*dot, []byte(res.Graph.Dot()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved dot rendering to %s\n", *dot)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tensat.WriteChromeTrace(f, res.Trace); err != nil {
			f.Close()
			log.Fatalf("writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved trace to %s (open in Perfetto)\n", *traceOut)
	}
}

// exportMPS runs the exploration phase only, formulates the extraction
// ILP over the resulting e-graph, and writes it as a free-format MPS
// file any MIP solver can read — the model that -extractor ilp would
// have solved, made portable for offline experiments.
func exportMPS(ctx context.Context, g *tensat.Graph, opt tensat.Options, registry *tensat.Registry, path string) error {
	rs := tensat.DefaultRules()
	if opt.RuleSet != "" {
		named, ok := registry.RuleSet(opt.RuleSet)
		if !ok {
			return fmt.Errorf("unknown ruleset %q", opt.RuleSet)
		}
		rs = named
	}
	model := tensat.DefaultCostModel()
	if opt.CostModelName != "" {
		named, ok := registry.CostModel(opt.CostModelName)
		if !ok {
			return fmt.Errorf("unknown costmodel %q", opt.CostModelName)
		}
		model = named
	}
	runner := rewrite.NewRunner(rs)
	runner.Limits = rewrite.Limits{
		MaxNodes: opt.NodeLimit,
		MaxIters: opt.IterLimit,
		KMulti:   opt.KMulti,
		Timeout:  opt.ExploreTimeout,
	}
	runner.Workers = opt.Workers
	switch opt.CycleFilter {
	case tensat.FilterVanilla:
		runner.Filter = rewrite.FilterVanilla
	case tensat.FilterNone:
		runner.Filter = rewrite.FilterNone
	default:
		runner.Filter = rewrite.FilterEfficient
	}
	ex, err := runner.RunContext(ctx, g)
	if err != nil {
		return err
	}
	topo := ilp.TopoReal
	if opt.TopoInt {
		topo = ilp.TopoInt
	}
	p, _, err := extract.BuildProblem(ex, model, extract.ILPOptions{
		CycleConstraints: opt.CycleFilter == tensat.FilterNone,
		TopoMode:         topo,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lpfile.WriteMPS(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printProgress renders one live progress line per pipeline event.
func printProgress(p tensat.Progress) {
	at := p.Elapsed.Round(10 * time.Millisecond)
	switch p.Phase {
	case tensat.PhaseExplore:
		fmt.Fprintf(os.Stderr, "[%8v] explore  iter=%-3d enodes=%-6d eclasses=%d\n",
			at, p.Iteration, p.ENodes, p.EClasses)
	case tensat.PhaseExtract:
		if p.BestCost > 0 {
			fmt.Fprintf(os.Stderr, "[%8v] extract  incumbent=%.1f us\n", at, p.BestCost)
		} else {
			fmt.Fprintf(os.Stderr, "[%8v] extract  starting over %d e-nodes\n", at, p.ENodes)
		}
	case tensat.PhaseDone:
		fmt.Fprintf(os.Stderr, "[%8v] done     cost=%.1f us\n", at, p.BestCost)
	default:
		fmt.Fprintf(os.Stderr, "[%8v] %s\n", at, p.Phase)
	}
}
