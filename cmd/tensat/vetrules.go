package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/rulecheck"
)

// vetRulesMain implements `tensat vet-rules [flags] <dir-or-file>...`:
// the static rule/profile verifier as a standalone command, for CI and
// for authors iterating on .rules files. It returns the process exit
// code: 0 when every argument vets clean (warnings allowed unless
// -strict), 1 when findings fail, 2 on usage errors.
func vetRulesMain(args []string) int {
	fs := flag.NewFlagSet("vet-rules", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array (machine-readable)")
		strict    = fs.Bool("strict", false, "exit nonzero on warnings too, not just errors")
		costmodel = fs.String("costmodel", "t4", "cost model to price target operators against (t4, a100, cpu)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tensat vet-rules [-json] [-strict] [-costmodel t4] <dir-or-file>...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	model, ok := tensat.DefaultRegistry().CostModel(*costmodel)
	if !ok {
		fmt.Fprintf(os.Stderr, "tensat: unknown cost model %q\n", *costmodel)
		return 2
	}
	// Cross-check the builtin rule sets too: a cost-model edit that
	// strands a builtin rewrite should fail the same gate as a broken
	// profile file.
	findings := vetBuiltins(model)
	for _, arg := range fs.Args() {
		st, err := os.Stat(arg)
		switch {
		case err != nil:
			findings = append(findings, rulecheck.Finding{
				Source: arg, Class: rulecheck.ClassLoadError,
				Severity: rulecheck.SevError, Detail: err.Error(),
			})
		case st.IsDir():
			dirFindings, err := rulecheck.CheckDir(arg, model)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tensat: %v\n", err)
				return 2
			}
			findings = append(findings, dirFindings...)
		default:
			findings = append(findings, rulecheck.CheckFile(arg, model)...)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []rulecheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "tensat: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) == 0 {
			fmt.Println("vet-rules: all rule sets clean")
		}
	}

	if rulecheck.HasErrors(findings) || (*strict && len(findings) > 0) {
		return 1
	}
	return 0
}

// vetBuiltins verifies the compiled-in rule sets against the chosen
// cost model.
func vetBuiltins(model cost.Model) []rulecheck.Finding {
	var out []rulecheck.Finding
	reg := tensat.DefaultRegistry()
	for _, name := range []string{tensat.DefaultRuleSetName, tensat.SingleRuleSetName} {
		rs, ok := reg.RuleSet(name)
		if !ok {
			continue
		}
		out = append(out, rulecheck.CheckRules("builtin:"+name, rs, model)...)
	}
	return out
}
