// Command tensatd serves TENSAT graph optimization over HTTP+JSON.
//
// The versioned surface is asynchronous — optimizations are jobs that
// are submitted, observed, and harvested:
//
//	POST   /v1/jobs             — submit a graph; answers 202 + job id
//	GET    /v1/jobs             — list tracked jobs (status, age, profile)
//	GET    /v1/jobs/{id}        — status + live progress snapshot
//	GET    /v1/jobs/{id}/result — the optimized graph once done
//	DELETE /v1/jobs/{id}        — cancel a running job
//	GET    /v1/jobs/{id}/events — progress as server-sent events
//	GET    /v1/rulesets         — named rule sets with content hashes
//	GET    /v1/costmodels       — named device cost models with hashes
//	GET    /v1/version          — build/runtime identification
//	GET    /v1/stats            — cache/latency/job/profile counters
//	GET    /v1/healthz          — liveness probe
//	POST   /optimize            — deprecated synchronous shim
//	GET    /stats, /healthz     — deprecated pre-/v1 spellings
//
// Quick start:
//
//	tensatd -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": "(output (matmul 0 (input \"x@64 256\") (weight \"w1@256 256\")))\n(output (matmul 0 (input \"x@64 256\") (weight \"w2@256 256\")))",
//	  "options": {"extractor": "ilp", "ruleset": "taso-default", "cost_model": "a100"}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>          # poll progress
//	curl -s localhost:8080/v1/jobs/<id>/result   # fetch the answer
//
// Structurally identical graphs — whatever their input names or node
// order — share one cache entry and one in-flight run per profile;
// repeat a finished request to see "cached": true.
//
// Optimization profiles: -rules-dir loads every *.rules file in a
// directory as a named rule set (see the README for the line format)
// and -device-dir loads every *.json device spec as a named cost
// model; requests select them per job via the "ruleset"/"cost_model"
// options. A malformed or unsound file refuses to boot the daemon —
// better a loud start-up failure than a silently missing profile.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tensat"
	"tensat/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tensatd: ")

	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "max concurrent optimizations (0 = GOMAXPROCS)")
		searchWorkers = flag.Int("search-workers", 0, "parallel e-matching goroutines per optimization (0 = GOMAXPROCS, 1 = sequential); with a full -workers pool, total search goroutines is the product, so heavily loaded daemons should divide cores between the two")
		cacheSize     = flag.Int("cache", 256, "result cache capacity (entries)")
		maxJobs       = flag.Int("max-jobs", 1024, "async job store capacity; submissions beyond it answer 429 once every held job is unfinished")
		jobTTL        = flag.Duration("job-ttl", 15*time.Minute, "how long a finished job's result and progress log stay queryable")
		nodeLimit     = flag.Int("nodelimit", 20000, "default e-graph node limit (N_max)")
		iters         = flag.Int("iters", 15, "default exploration iteration limit (k_max)")
		kmulti        = flag.Int("kmulti", 1, "default multi-pattern iterations (k_multi)")
		ilpTime       = flag.Duration("ilptimeout", 2*time.Minute, "default ILP solver timeout")
		rulesDir      = flag.String("rules-dir", "", "load every *.rules file in this directory as a named rule set profile")
		deviceDir     = flag.String("device-dir", "", "load every *.json device spec in this directory as a named cost model profile")
	)
	flag.Parse()

	// Worker counts must be non-negative: silently coercing a negative
	// value to "GOMAXPROCS" (or to sequential search) hides an operator
	// mistake.
	if *workers < 0 {
		log.Fatalf("-workers must be >= 0, got %d", *workers)
	}
	if *searchWorkers < 0 {
		log.Fatalf("-search-workers must be >= 0, got %d", *searchWorkers)
	}

	registry := tensat.DefaultRegistry()
	if *rulesDir != "" {
		infos, err := registry.LoadRulesDir(*rulesDir)
		if err != nil {
			log.Fatalf("loading rule sets: %v", err)
		}
		for _, info := range infos {
			log.Printf("ruleset %s: %d rules (%d multi) hash %.12s from %s",
				info.Name, info.Rules, info.MultiRules, info.Hash, info.Source)
		}
	}
	if *deviceDir != "" {
		infos, err := registry.LoadDevicesDir(*deviceDir)
		if err != nil {
			log.Fatalf("loading device specs: %v", err)
		}
		for _, info := range infos {
			log.Printf("costmodel %s: %d params hash %.12s from %s",
				info.Name, info.Params, info.Hash, info.Source)
		}
	}

	base := tensat.DefaultOptions()
	base.NodeLimit = *nodeLimit
	base.IterLimit = *iters
	base.KMulti = *kmulti
	base.ILPTimeout = *ilpTime
	base.Workers = *searchWorkers

	svc := serve.New(serve.Config{
		Workers:   *workers,
		CacheSize: *cacheSize,
		MaxJobs:   *maxJobs,
		JobTTL:    *jobTTL,
		Base:      base,
		Registry:  registry,
	})

	server := &http.Server{
		Addr:    *addr,
		Handler: serve.NewHandler(svc),
		// Optimizations can legitimately run for minutes; only bound
		// header reads so stuck clients cannot pin connections.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (workers=%d, cache=%d)", *addr, svc.Workers(), *cacheSize)
		errc <- server.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatal(err)
	}
}
