// Command tensatd serves TENSAT graph optimization over HTTP+JSON.
//
// The versioned surface is asynchronous — optimizations are jobs that
// are submitted, observed, and harvested:
//
//	POST   /v1/jobs             — submit a graph; answers 202 + job id
//	GET    /v1/jobs             — list tracked jobs (status, age, profile)
//	GET    /v1/jobs/{id}        — status + live progress snapshot
//	GET    /v1/jobs/{id}/result — the optimized graph once done
//	DELETE /v1/jobs/{id}        — cancel a running job
//	GET    /v1/jobs/{id}/events — progress as server-sent events
//	GET    /v1/jobs/{id}/trace  — per-phase trace (add ?format=chrome for Perfetto)
//	GET    /v1/rulesets         — named rule sets with content hashes
//	GET    /v1/costmodels       — named device cost models with hashes
//	GET    /v1/version          — build/runtime identification
//	GET    /v1/stats            — cache/latency/job/profile counters
//	GET    /v1/healthz          — liveness probe
//	GET    /v1/readyz           — readiness probe (503 while draining)
//	GET    /metrics             — Prometheus text exposition
//	POST   /optimize            — deprecated synchronous shim
//	GET    /stats, /healthz     — deprecated pre-/v1 spellings
//	GET/PUT /v1/peer/cache/{key} — internal node-to-node cache surface
//
// Fleet operation: -store-dir persists results on disk so a restarted
// node keeps its warm set; -peers/-self form a static fleet that
// routes each cache key to one owning node via consistent hashing,
// with node-to-node requests authenticated by the shared secret in
// -cluster-secret-file; -tenants enables API-key auth with per-tenant rate limits,
// concurrency quotas and priorities — over-quota low-priority
// requests degrade to greedy-only extraction before ever being
// rejected. See the README's "Operating a tensatd fleet" section.
//
// Resilience: each peer sits behind a circuit breaker
// (-peer-breaker-failures / -peer-breaker-cooldown) with jittered
// retry for idempotent fetches (-peer-retries); store I/O failures
// flip the disk tier into degraded mode while memory keeps serving;
// SIGTERM drains gracefully — /readyz turns 503, running jobs finish
// under -drain-timeout. -fault-spec arms deterministic fault
// injection for chaos testing (development only, never production).
// See the README's "Failure modes and the degradation ladder" section.
//
// Quick start:
//
//	tensatd -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{
//	  "graph": "(output (matmul 0 (input \"x@64 256\") (weight \"w1@256 256\")))\n(output (matmul 0 (input \"x@64 256\") (weight \"w2@256 256\")))",
//	  "options": {"extractor": "ilp", "ruleset": "taso-default", "cost_model": "a100"}
//	}'
//	curl -s localhost:8080/v1/jobs/<id>          # poll progress
//	curl -s localhost:8080/v1/jobs/<id>/result   # fetch the answer
//
// Structurally identical graphs — whatever their input names or node
// order — share one cache entry and one in-flight run per profile;
// repeat a finished request to see "cached": true.
//
// Optimization profiles: -rules-dir loads every *.rules file in a
// directory as a named rule set (see the README for the line format)
// and -device-dir loads every *.json device spec as a named cost
// model; requests select them per job via the "ruleset"/"cost_model"
// options. A malformed or shape-unsound file refuses to boot the
// daemon — better a loud start-up failure than a silently missing
// profile — and every loaded file passes through the static rule
// verifier (internal/rulecheck): warnings are logged (-strict-rules
// turns them into startup failures), and -vet-only runs only the
// verifier and exits, for deploy-pipeline gating.
//
// Observability: the daemon logs structured records via log/slog
// (-log-format json for machine ingestion), exposes Prometheus metrics
// on GET /metrics, and — when -debug-addr is set — serves net/http/pprof
// on a separate listener (keep it on loopback or a private interface;
// profiles expose internals).
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tensat"
	"tensat/internal/cachestore"
	"tensat/internal/cluster"
	"tensat/internal/fault"
	"tensat/internal/ilp/backend"
	"tensat/internal/rulecheck"
	"tensat/internal/serve"
	"tensat/internal/tenant"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "max concurrent optimizations (0 = GOMAXPROCS)")
		searchWorkers = flag.Int("search-workers", 0, "parallel e-matching goroutines per optimization (0 = GOMAXPROCS, 1 = sequential); with a full -workers pool, total search goroutines is the product, so heavily loaded daemons should divide cores between the two")
		cacheSize     = flag.Int("cache", 256, "result cache capacity (entries)")
		maxJobs       = flag.Int("max-jobs", 1024, "async job store capacity; submissions beyond it answer 429 once every held job is unfinished")
		jobTTL        = flag.Duration("job-ttl", 15*time.Minute, "how long a finished job's result and progress log stay queryable")
		nodeLimit     = flag.Int("nodelimit", 20000, "default e-graph node limit (N_max)")
		iters         = flag.Int("iters", 15, "default exploration iteration limit (k_max)")
		kmulti        = flag.Int("kmulti", 1, "default multi-pattern iterations (k_multi)")
		ilpTime       = flag.Duration("ilptimeout", 2*time.Minute, "default ILP solver timeout")
		ilpSolver     = flag.String("ilp-solver", "", "default ILP backend: builtin (parallel branch-and-bound), builtin-seq, cbc or highs (external binaries on PATH); requests override per-job with ilp_solver")
		rulesDir      = flag.String("rules-dir", "", "load every *.rules file in this directory as a named rule set profile")
		deviceDir     = flag.String("device-dir", "", "load every *.json device spec in this directory as a named cost model profile")
		strictRules   = flag.Bool("strict-rules", false, "fail startup on any static rule-verifier finding in -rules-dir, warnings included (shape-unsound rules always fail)")
		vetOnly       = flag.Bool("vet-only", false, "vet -rules-dir with the static rule verifier and exit without serving (exit 1 on error findings, or any finding with -strict-rules)")
		cacheBytes    = flag.Int64("cache-max-bytes", 0, "result cache byte bound (encoded size; 0 = unbounded, entry-count bound still applies)")
		storeDir      = flag.String("store-dir", "", "persist optimization results to this directory so restarts keep their warm set (empty = memory only)")
		peers         = flag.String("peers", "", "comma-separated host:port fleet membership for the peer cache tier (requires -self)")
		self          = flag.String("self", "", "this node's own name in -peers (its advertised host:port)")
		peerTimeout   = flag.Duration("peer-timeout", cluster.DefaultTimeout, "per-request peer cache timeout; a slower peer is treated as a miss")
		peerSecret    = flag.String("cluster-secret-file", "", "file holding the fleet's shared peer-auth secret (>= 16 bytes after trimming whitespace); required with -peers, must match on every node")
		breakerFails  = flag.Int("peer-breaker-failures", 0, "consecutive failures that trip a peer's circuit breaker (0 = default "+strconv.Itoa(cluster.DefaultBreakerThreshold)+")")
		breakerCool   = flag.Duration("peer-breaker-cooldown", 0, "how long a tripped breaker shuns its peer before a half-open probe (0 = default "+cluster.DefaultBreakerCooldown.String()+")")
		peerRetries   = flag.Int("peer-retries", 0, "retry attempts for idempotent peer fetches, with jittered exponential backoff (negative = disabled, 0 = default "+strconv.Itoa(cluster.DefaultRetryAttempts)+")")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM/SIGINT shutdown waits for running jobs to finish before abandoning them")
		faultSpec     = flag.String("fault-spec", "", "arm deterministic fault injection, e.g. 'store.put:enospc,peer.fetch:error:3' (development/chaos testing only — never set in production)")
		tenantsFile   = flag.String("tenants", "", "JSON tenant registry (API keys, rate limits, concurrency quotas, priorities); empty = no auth, no quotas")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled; bind to loopback)")
		keepAlive     = flag.Duration("sse-keepalive", 15*time.Second, "idle SSE keepalive comment interval (negative = disabled)")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format (want text or json)", "got", *logFormat)
		os.Exit(1)
	}
	logger := slog.New(handler)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	// Worker counts must be non-negative: silently coercing a negative
	// value to "GOMAXPROCS" (or to sequential search) hides an operator
	// mistake.
	if *workers < 0 {
		fatal("-workers must be >= 0", "got", *workers)
	}
	if *searchWorkers < 0 {
		fatal("-search-workers must be >= 0", "got", *searchWorkers)
	}
	if !backend.Valid(*ilpSolver) {
		fatal("-ilp-solver unknown", "got", *ilpSolver, "known", strings.Join(backend.Names(), ", "))
	}
	if *drainTimeout < 0 {
		fatal("-drain-timeout must be >= 0", "got", *drainTimeout)
	}

	// Fault injection arms before anything that could consult a point.
	// The spec is for chaos drills and development; a daemon with armed
	// faults deliberately misbehaves, so make the state unmissable.
	if *faultSpec != "" {
		if err := fault.ParseSpec(*faultSpec); err != nil {
			fatal("parsing -fault-spec", "error", err)
		}
		logger.Warn("FAULT INJECTION ARMED — this daemon will deliberately misbehave; never use -fault-spec in production",
			"spec", *faultSpec)
	}

	// -vet-only turns the daemon into a config checker: run the static
	// rule verifier over -rules-dir and exit without binding a socket,
	// so deploy pipelines can gate on profile health.
	if *vetOnly {
		if *rulesDir == "" {
			fatal("-vet-only requires -rules-dir")
		}
		model, _ := tensat.DefaultRegistry().CostModel(tensat.DefaultCostModelName)
		findings, err := rulecheck.CheckDir(*rulesDir, model)
		if err != nil {
			fatal("vetting rule sets", "error", err)
		}
		for _, f := range findings {
			logger.Warn("rule vet finding", "source", f.Source, "rule", f.Rule,
				"class", f.Class, "severity", f.Severity, "detail", f.Detail)
		}
		if rulecheck.HasErrors(findings) || (*strictRules && len(findings) > 0) {
			os.Exit(1)
		}
		logger.Info("rule sets vetted", "dir", *rulesDir, "findings", len(findings))
		return
	}

	registry := tensat.DefaultRegistry()
	if *strictRules {
		registry.SetRuleVetMode(tensat.RuleVetStrict)
	}
	if *rulesDir != "" {
		infos, err := registry.LoadRulesDir(*rulesDir)
		if err != nil {
			fatal("loading rule sets", "error", err)
		}
		for _, info := range infos {
			logger.Info("ruleset loaded",
				"name", info.Name, "rules", info.Rules, "multi_rules", info.MultiRules,
				"hash", info.Hash[:12], "source", info.Source)
			for _, w := range info.VetWarnings {
				logger.Warn("rule vet warning", "ruleset", info.Name, "finding", w)
			}
		}
	}
	if *deviceDir != "" {
		infos, err := registry.LoadDevicesDir(*deviceDir)
		if err != nil {
			fatal("loading device specs", "error", err)
		}
		for _, info := range infos {
			logger.Info("costmodel loaded",
				"name", info.Name, "params", info.Params,
				"hash", info.Hash[:12], "source", info.Source)
		}
	}

	base := tensat.DefaultOptions()
	base.NodeLimit = *nodeLimit
	base.IterLimit = *iters
	base.KMulti = *kmulti
	base.ILPTimeout = *ilpTime
	base.Workers = *searchWorkers
	base.ILPSolver = *ilpSolver

	// The persistent store opens before the listener binds: an unusable
	// -store-dir is a loud startup failure, not a silent memory-only
	// daemon.
	var store cachestore.Store
	if *storeDir != "" {
		st, err := cachestore.Open(*storeDir)
		if err != nil {
			fatal("opening result store", "dir", *storeDir, "error", err)
		}
		defer st.Close()
		store = st
		logger.Info("result store opened", "dir", *storeDir, "entries", st.Len(), "bytes", st.Bytes())
	}

	var peerClient *cluster.Client
	if *peers != "" {
		if *self == "" {
			fatal("-peers requires -self (this node's own name in the list)")
		}
		if *peerSecret == "" {
			fatal("-peers requires -cluster-secret-file; the peer surface shares the client listener and must authenticate node-to-node traffic")
		}
		raw, err := os.ReadFile(*peerSecret)
		if err != nil {
			fatal("reading cluster secret", "file", *peerSecret, "error", err)
		}
		secret := strings.TrimSpace(string(raw))
		var fleet []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				fleet = append(fleet, p)
			}
		}
		cl, err := cluster.New(cluster.Config{
			Self:             *self,
			Peers:            fleet,
			Timeout:          *peerTimeout,
			Secret:           secret,
			BreakerThreshold: *breakerFails,
			BreakerCooldown:  *breakerCool,
			RetryAttempts:    *peerRetries,
		})
		if err != nil {
			fatal("configuring peer cache tier", "error", err)
		}
		defer cl.Close()
		peerClient = cl
		logger.Info("peer cache tier configured", "self", *self, "fleet", cl.Nodes())
	} else if *self != "" {
		fatal("-self without -peers; both are needed for a peer cache tier")
	}

	var tenants *tenant.Registry
	if *tenantsFile != "" {
		reg, err := tenant.Load(*tenantsFile)
		if err != nil {
			fatal("loading tenant registry", "file", *tenantsFile, "error", err)
		}
		tenants = reg
		logger.Info("tenant registry loaded", "file", *tenantsFile, "tenants", reg.Names())
	}

	svc := serve.New(serve.Config{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		CacheMaxBytes: *cacheBytes,
		MaxJobs:       *maxJobs,
		JobTTL:        *jobTTL,
		Base:          base,
		Registry:      registry,
		Logger:        logger,
		SSEKeepAlive:  *keepAlive,
		Store:         store,
		Cluster:       peerClient,
		Tenants:       tenants,
	})

	server := &http.Server{
		Addr:    *addr,
		Handler: serve.AccessLog(logger, serve.NewHandler(svc)),
		// Optimizations can legitimately run for minutes; only bound
		// header reads so stuck clients cannot pin connections.
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof mux lives on its own opt-in listener rather than the
	// service mux: profiles and symbol tables are internals no public
	// surface should leak, and a separate port is easy to firewall.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugServer := &http.Server{Addr: *debugAddr, Handler: debugMux,
			ReadHeaderTimeout: 10 * time.Second}
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := debugServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err)
			}
		}()
		defer debugServer.Close()
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", svc.Workers(), "cache", *cacheSize)
		errc <- server.ListenAndServe()
	}()
	select {
	case err := <-errc:
		fatal("serve", "error", err)
	case <-ctx.Done():
	}
	// Graceful drain: flip /readyz to 503 so load balancers stop routing
	// here, refuse new work with 503 + Retry-After, and give running
	// jobs up to -drain-timeout to finish before closing the listener.
	logger.Info("shutting down — draining", "timeout", *drainTimeout)
	svc.BeginDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	if err := svc.Drain(drainCtx); err != nil {
		logger.Warn("drain timeout expired — abandoning unfinished jobs", "error", err)
	} else {
		logger.Info("drained: all running jobs finished")
	}
	cancelDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal("shutdown", "error", err)
	}
}
