package tensat_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tensat"
	"tensat/internal/tensor"
)

// figure2Graph builds the paper's motivating example.
func figure2Graph(t testing.TB) *tensat.Graph {
	t.Helper()
	b := tensat.NewBuilder()
	x := b.Input("x", 64, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	g, err := b.Finish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOptimizeDefault(t *testing.T) {
	g := figure2Graph(t)
	res, err := tensat.Optimize(g, tensat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedupPercent <= 0 {
		t.Fatalf("no speedup: %+v", res)
	}
	if res.OptCost >= res.OrigCost {
		t.Fatalf("cost did not drop: %v -> %v", res.OrigCost, res.OptCost)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if h := res.Graph.OpHistogram(); h[tensor.OpMatmul] != 1 {
		t.Fatalf("expected the merged matmul, got %v", tensor.HistogramString(h))
	}
}

func TestOptimizeGreedyExtractor(t *testing.T) {
	g := figure2Graph(t)
	opt := tensat.DefaultOptions()
	opt.Extractor = tensat.ExtractGreedy
	res, err := tensat.Optimize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy cannot see the sharing win (§6.5): it keeps two matmuls.
	if h := res.Graph.OpHistogram(); h[tensor.OpMatmul] != 2 {
		t.Fatalf("greedy unexpectedly merged: %v", tensor.HistogramString(h))
	}
}

func TestOptimizeFilterModes(t *testing.T) {
	g := figure2Graph(t)
	costs := map[tensat.CycleFilter]float64{}
	for _, f := range []tensat.CycleFilter{tensat.FilterEfficient, tensat.FilterVanilla, tensat.FilterNone} {
		opt := tensat.DefaultOptions()
		opt.CycleFilter = f
		opt.ILPTimeout = time.Minute
		res, err := tensat.Optimize(g, opt)
		if err != nil {
			t.Fatalf("filter %v: %v", f, err)
		}
		costs[f] = res.OptCost
	}
	if costs[tensat.FilterEfficient] != costs[tensat.FilterVanilla] {
		t.Fatalf("efficient (%v) and vanilla (%v) disagree",
			costs[tensat.FilterEfficient], costs[tensat.FilterVanilla])
	}
	if diff := costs[tensat.FilterEfficient] - costs[tensat.FilterNone]; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("cycle-constrained ILP (%v) and filtered ILP (%v) disagree",
			costs[tensat.FilterNone], costs[tensat.FilterEfficient])
	}
}

func TestOptimizeCustomRulesAndModel(t *testing.T) {
	b := tensat.NewBuilder()
	x := b.Input("x", 8, 8)
	g, err := b.Finish(b.Relu(b.Relu(x)))
	if err != nil {
		t.Fatal(err)
	}
	rule, err := tensat.NewRule("relu-idem", "(relu (relu ?x))", "(relu ?x)")
	if err != nil {
		t.Fatal(err)
	}
	opt := tensat.DefaultOptions()
	opt.Rules = []*tensat.Rule{rule}
	res, err := tensat.Optimize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h := res.Graph.OpHistogram(); h[tensor.OpRelu] != 1 {
		t.Fatalf("idempotence not applied: %v", tensor.HistogramString(h))
	}
}

func TestOptimizeContextCanceled(t *testing.T) {
	g := figure2Graph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tensat.OptimizeContext(ctx, g, tensat.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestOptimizeContextDeadline(t *testing.T) {
	g := figure2Graph(t)
	// A deadline that has effectively already passed must abort the
	// pipeline with DeadlineExceeded, however far it got.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := tensat.OptimizeContext(ctx, g, tensat.DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestOptimizeContextPlainBackground(t *testing.T) {
	g := figure2Graph(t)
	res, err := tensat.OptimizeContext(context.Background(), g, tensat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.OptCost >= res.OrigCost {
		t.Fatalf("cost did not drop: %v -> %v", res.OrigCost, res.OptCost)
	}
}

func TestOptimizeNilGraph(t *testing.T) {
	if _, err := tensat.Optimize(nil, tensat.DefaultOptions()); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestNewMultiRuleAPI(t *testing.T) {
	r, err := tensat.NewMultiRule("m",
		"(relu ?x) (relu ?y)",
		"(split0 (split 1 (relu (concat2 1 ?x ?y)))) (split1 (split 1 (relu (concat2 1 ?x ?y))))")
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsMulti() {
		t.Fatal("not multi")
	}
	if _, err := tensat.NewRule("bad", "(relu ?x", "?x"); err == nil {
		t.Fatal("malformed pattern accepted")
	}
}

func TestDefaultRulesNonEmpty(t *testing.T) {
	rs := tensat.DefaultRules()
	if len(rs) < 40 {
		t.Fatalf("only %d default rules", len(rs))
	}
}

func TestResultStringOutput(t *testing.T) {
	g := figure2Graph(t)
	res, err := tensat.Optimize(g, tensat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Graph.String()
	if !strings.Contains(s, "matmul") || !strings.Contains(s, "concat2") {
		t.Fatalf("unexpected graph rendering:\n%s", s)
	}
}

func TestRuntimeModelDiffersFromDevice(t *testing.T) {
	g := figure2Graph(t)
	dev := tensat.DefaultCostModel()
	rt := tensat.RuntimeModel(dev)
	if tensat.GraphCost(dev, g) <= 0 {
		t.Fatal("zero device cost")
	}
	// Runtime model deviates on data-movement ops; on this plain graph
	// they coincide, after optimization (with splits) they differ.
	res, err := tensat.Optimize(g, tensat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tensat.GraphCost(rt, res.Graph) <= tensat.GraphCost(dev, res.Graph) {
		t.Fatal("runtime model shows no deviation on split/concat graph")
	}
}
