package tensat_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tensat"
	"tensat/internal/models"
)

// figure2 builds the two-matmuls-shared-input motivating example.
func figure2(t testing.TB) *tensat.Graph {
	t.Helper()
	b := tensat.NewBuilder()
	x := b.Input("x", 64, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	g, err := b.Finish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// progressRecorder collects every snapshot a job's sink receives.
type progressRecorder struct {
	mu   sync.Mutex
	snap []tensat.Progress
}

func (r *progressRecorder) sink(p tensat.Progress) {
	r.mu.Lock()
	r.snap = append(r.snap, p)
	r.mu.Unlock()
}

func (r *progressRecorder) all() []tensat.Progress {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]tensat.Progress(nil), r.snap...)
}

// TestOptimizerSubmitLiveProgress drives a job end to end and checks
// the progress contract: a queued initial snapshot, per-iteration
// explore snapshots, an extract transition, and a terminal done
// snapshot carrying the final statistics — with the result identical
// to the synchronous shim's.
func TestOptimizerSubmitLiveProgress(t *testing.T) {
	opts := tensat.DefaultOptions()
	opts.NodeLimit = 2000
	opts.IterLimit = 5
	rec := &progressRecorder{}
	opts.Progress = rec.sink

	o := tensat.NewOptimizer()
	job, err := o.Submit(context.Background(), figure2(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if p := job.Progress(); p.Phase.Terminal() {
		// Submit must return before the job finishes... but a very fast
		// run may already be done; only the snapshot sequence below is
		// authoritative. Just exercise the accessor.
		_ = p
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("Result returned but Done is not closed")
	}

	snaps := rec.all()
	if len(snaps) < 3 {
		t.Fatalf("got %d progress snapshots, want >= 3 (explore/extract/done)", len(snaps))
	}
	var sawExplore, sawExtract bool
	for i, p := range snaps {
		switch p.Phase {
		case tensat.PhaseExplore:
			if sawExtract {
				t.Fatalf("snapshot %d: explore after extract", i)
			}
			sawExplore = true
		case tensat.PhaseExtract:
			sawExtract = true
		case tensat.PhaseDone:
			if i != len(snaps)-1 {
				t.Fatalf("done snapshot %d is not last of %d", i, len(snaps))
			}
		default:
			t.Fatalf("snapshot %d: unexpected phase %q", i, p.Phase)
		}
	}
	if !sawExplore || !sawExtract {
		t.Fatalf("missing phases: explore=%v extract=%v", sawExplore, sawExtract)
	}
	last := snaps[len(snaps)-1]
	if last.Phase != tensat.PhaseDone {
		t.Fatalf("final snapshot phase = %q, want done", last.Phase)
	}
	if last.Iteration != res.Iterations || last.ENodes != res.ENodes || last.BestCost != res.OptCost {
		t.Fatalf("final snapshot %+v does not match result iters=%d enodes=%d cost=%v",
			last, res.Iterations, res.ENodes, res.OptCost)
	}
	if got := job.Progress(); got.Phase != tensat.PhaseDone {
		t.Fatalf("Progress after done = %q", got.Phase)
	}
	if err := job.Err(); err != nil {
		t.Fatalf("Err after success = %v", err)
	}

	// The job's answer must equal the synchronous shim's, byte for
	// byte on the wire.
	syncOpts := opts
	syncOpts.Progress = nil
	sres, err := tensat.Optimize(figure2(t), syncOpts)
	if err != nil {
		t.Fatal(err)
	}
	jt, err := res.Graph.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	st, err := sres.Graph.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if string(jt) != string(st) {
		t.Fatalf("job graph differs from synchronous graph:\n%s\nvs\n%s", jt, st)
	}
	if res.OptCost != sres.OptCost {
		t.Fatalf("job cost %v != sync cost %v", res.OptCost, sres.OptCost)
	}
}

// TestOptimizerReusedAcrossJobs submits two different graphs through
// one Optimizer (the rules compile once) and a third with per-job
// custom rules, checking isolation between jobs.
func TestOptimizerReusedAcrossJobs(t *testing.T) {
	o := tensat.NewOptimizer()
	opts := tensat.DefaultOptions()
	opts.NodeLimit = 2000
	opts.IterLimit = 5

	j1, err := o.Submit(context.Background(), figure2(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b := tensat.NewBuilder()
	g2, err := b.Finish(b.Relu(b.Input("x", 8, 8)))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := o.Submit(context.Background(), g2, opts)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Result()
	if err != nil {
		t.Fatal(err)
	}
	if r1.OptCost >= r1.OrigCost {
		t.Fatalf("first job found no improvement: %v -> %v", r1.OrigCost, r1.OptCost)
	}
	if _, err := j2.Result(); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerJobCancel cancels a job mid-exploration and checks the
// terminal state: context.Canceled, the canceled phase, Done closed.
func TestOptimizerJobCancel(t *testing.T) {
	exploring := make(chan struct{})
	var once sync.Once
	opts := tensat.DefaultOptions()
	opts.Extractor = tensat.ExtractGreedy
	opts.Progress = func(p tensat.Progress) {
		if p.Phase == tensat.PhaseExplore {
			once.Do(func() { close(exploring) })
		}
	}

	job, err := tensat.NewOptimizer().Submit(context.Background(), models.NasRNN(models.ScaleTest), opts)
	if err != nil {
		t.Fatal(err)
	}
	<-exploring
	job.Cancel()

	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("canceled job did not finish")
	}
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(job.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", job.Err())
	}
	if p := job.Progress(); p.Phase != tensat.PhaseCanceled {
		t.Fatalf("final phase = %q, want canceled", p.Phase)
	}
}

// TestOptimizerSubmitNilGraph mirrors Optimize's nil handling.
func TestOptimizerSubmitNilGraph(t *testing.T) {
	if _, err := tensat.NewOptimizer().Submit(context.Background(), nil, tensat.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestOptimizerSubmitDeadContext rejects submission on a dead context.
func TestOptimizerSubmitDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tensat.NewOptimizer().Submit(ctx, figure2(t), tensat.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
