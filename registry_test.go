package tensat

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tensat/internal/tensor"
)

func TestRegistryBuiltins(t *testing.T) {
	r := NewRegistry()
	wantRS := []string{SingleRuleSetName, DefaultRuleSetName}
	for _, name := range wantRS {
		rs, ok := r.RuleSet(name)
		if !ok || len(rs) == 0 {
			t.Errorf("builtin rule set %q missing or empty", name)
		}
	}
	wantCM := []string{DefaultCostModelName, "a100", "cpu"}
	for _, name := range wantCM {
		if _, ok := r.CostModel(name); !ok {
			t.Errorf("builtin cost model %q missing", name)
		}
		info, _ := r.CostModelInfo(name)
		if info.Hash == "" || info.Source != "builtin" {
			t.Errorf("cost model %q info incomplete: %+v", name, info)
		}
	}
	di, _ := r.RuleSetInfo(DefaultRuleSetName)
	si, _ := r.RuleSetInfo(SingleRuleSetName)
	if di.Hash == si.Hash {
		t.Error("taso-default and taso-single share a content hash")
	}
	if di.MultiRules == 0 || si.MultiRules != 0 {
		t.Errorf("multi-rule counts wrong: default=%d single=%d", di.MultiRules, si.MultiRules)
	}
}

// TestRegistryHashesStableAcrossRestarts simulates a process restart:
// two independently constructed registries — including file loads —
// must agree on every content hash, since serving-cache keys derive
// from them.
func TestRegistryHashesStableAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	ruleFile := filepath.Join(dir, "mini.rules")
	if err := os.WriteFile(ruleFile, []byte("fuse: (relu (matmul 0 ?x ?y)) => (matmul 2 ?x ?y)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deviceFile := filepath.Join(dir, "dev.json")
	if err := os.WriteFile(deviceFile, []byte(`{"name":"dev","peak_gflops":100,"mem_bw_gbps":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	load := func() (map[string]string, map[string]string) {
		r := NewRegistry()
		if _, err := r.LoadRulesDir(dir); err != nil {
			t.Fatal(err)
		}
		if _, err := r.LoadDevicesDir(dir); err != nil {
			t.Fatal(err)
		}
		rs := make(map[string]string)
		for _, info := range r.RuleSets() {
			rs[info.Name] = info.Hash
		}
		cm := make(map[string]string)
		for _, info := range r.CostModels() {
			cm[info.Name] = info.Hash
		}
		return rs, cm
	}
	rs1, cm1 := load()
	rs2, cm2 := load()
	if len(rs1) != len(rs2) || len(cm1) != len(cm2) {
		t.Fatalf("registries differ in size: %v vs %v, %v vs %v", rs1, rs2, cm1, cm2)
	}
	for name, h := range rs1 {
		if rs2[name] != h {
			t.Errorf("rule set %q hash differs across restarts: %s vs %s", name, h, rs2[name])
		}
	}
	for name, h := range cm1 {
		if cm2[name] != h {
			t.Errorf("cost model %q hash differs across restarts: %s vs %s", name, h, cm2[name])
		}
	}
	if _, ok := rs1["mini"]; !ok {
		t.Errorf("loaded rule file not registered under its base name: %v", rs1)
	}
	if _, ok := cm1["dev"]; !ok {
		t.Errorf("loaded device not registered under its spec name: %v", cm1)
	}
}

func TestRegistryLoadErrors(t *testing.T) {
	dir := t.TempDir()
	// "aaa" sorts before "bad": a partial (non-atomic) directory load
	// would register it before hitting the unsound file.
	good := filepath.Join(dir, "aaa.rules")
	if err := os.WriteFile(good, []byte("ok: (relu ?x) => (relu ?x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.rules")
	if err := os.WriteFile(bad, []byte("r: (relu ?x) => (ewadd ?x ?y)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if _, err := r.LoadRulesDir(dir); err == nil {
		t.Fatal("loading an unsound rule file succeeded")
	}
	if _, ok := r.RuleSet("bad"); ok {
		t.Error("failed load left a partial rule set registered")
	}
	if _, ok := r.RuleSet("aaa"); ok {
		t.Error("failed directory load registered the earlier valid file (not atomic)")
	}
	badDev := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badDev, []byte(`{"name":"bad","peak_gflops":-1,"mem_bw_gbps":10}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadDeviceFile(badDev); err == nil {
		t.Fatal("loading an invalid device spec succeeded")
	}
}

// TestRegistryRejectsBadProfileNames: names with characters outside
// the identifier alphabet would corrupt the "<ruleset>/<costmodel>"
// stats labels, and "custom" is the reserved programmatic-override
// label.
func TestRegistryRejectsBadProfileNames(t *testing.T) {
	r := NewRegistry()
	rs, _ := r.RuleSet(SingleRuleSetName)
	for _, name := range []string{"a/b", "has space", "custom", ""} {
		if err := r.RegisterRuleSet(name, rs); err == nil {
			t.Errorf("RegisterRuleSet(%q) succeeded", name)
		}
		if err := r.RegisterCostModel(name, DefaultCostModel(), "h1"); err == nil {
			t.Errorf("RegisterCostModel(%q) succeeded", name)
		}
	}
	spec := &DeviceSpec{Name: "a/b", PeakGFLOPS: 1, MemBWGBps: 1}
	if err := r.RegisterDevice(spec); err == nil {
		t.Error("RegisterDevice with slash in name succeeded")
	}
	dir := t.TempDir()
	devFile := filepath.Join(dir, "c.json")
	if err := os.WriteFile(devFile, []byte(`{"name":"custom","peak_gflops":1,"mem_bw_gbps":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadDeviceFile(devFile); err == nil {
		t.Error("loading a device named \"custom\" succeeded")
	}
}

func buildProfileTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	x := b.Input("x", 32, 128)
	w := b.Weight("w", 128, 128)
	g, err := b.Finish(b.Tanh(b.Matmul(ActNone, x, w)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOptimizerResolvesNamedProfiles optimizes through named profiles
// end to end and checks unknown names fail the submission with the
// known-name listing.
func TestOptimizerResolvesNamedProfiles(t *testing.T) {
	g := buildProfileTestGraph(t)
	opt := DefaultOptions()
	opt.RuleSet = SingleRuleSetName
	opt.CostModelName = "a100"
	opt.IterLimit = 4
	opt.NodeLimit = 2000
	opt.Extractor = ExtractGreedy
	job, err := NewOptimizer().Submit(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	// Costs must be priced by the named device, not the default T4.
	a100, _ := DefaultRegistry().CostModel("a100")
	if want := GraphCost(a100, g); res.OrigCost != want {
		t.Errorf("OrigCost = %v, want the a100 pricing %v", res.OrigCost, want)
	}
	if t4 := GraphCost(DefaultCostModel(), g); res.OrigCost == t4 {
		t.Errorf("a100 profile priced identically to t4 (%v)", t4)
	}

	for _, bad := range []Options{
		{RuleSet: "nope"},
		{CostModelName: "nope"},
	} {
		_, err := NewOptimizer().Submit(context.Background(), g, bad)
		if err == nil {
			t.Fatalf("Submit with unknown profile %+v succeeded", bad)
		}
		if !strings.Contains(err.Error(), "unknown profile") || !strings.Contains(err.Error(), "known:") {
			t.Errorf("unknown-profile error %q lacks the known-name listing", err)
		}
	}
}

// TestOptionsObjectBeatsName: an explicit Rules/CostModel object on
// the same Options wins over a profile name, and base-template
// profiles inherit as a unit.
func TestOptionsObjectBeatsName(t *testing.T) {
	g := buildProfileTestGraph(t)
	counted := &countingModel{base: DefaultCostModel()}
	opt := DefaultOptions()
	opt.CostModel = counted
	opt.CostModelName = "a100" // ignored: the object wins
	opt.Rules = nil
	opt.RuleSet = SingleRuleSetName
	opt.IterLimit = 2
	opt.NodeLimit = 500
	opt.Extractor = ExtractGreedy
	if _, err := Optimize(g, opt); err != nil {
		t.Fatal(err)
	}
	if counted.calls == 0 {
		t.Error("explicit CostModel object was not used")
	}
}

type countingModel struct {
	base  CostModel
	calls int
}

func (m *countingModel) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	m.calls++
	return m.base.NodeCost(op, ival, sval, args)
}
