// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs one experiment end to end and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute numbers come from the
// simulated device (see internal/cost); EXPERIMENTS.md records how the
// shapes compare with the paper. Set TENSAT_BENCH_FULL=1 to use the
// paper-scale configuration instead of the CPU-friendly default.
package tensat_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"tensat/internal/cost"
	"tensat/internal/egraph"
	"tensat/internal/exp"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/ilp/presolve"
	"tensat/internal/obs"
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
)

// searchBenchWorkers is the parallel worker count of the search-phase
// benchmark pair below (the acceptance point of the Workers knob).
const searchBenchWorkers = 4

// searchBench accumulates the search-phase numbers: the explore-level
// sequential-vs-parallel split (Workers knob) and the matcher-level
// interpreter-vs-compiled split (the PR-5 engine swap). When the
// benchmarks have run, TestMain writes the summary to
// BENCH_search.json so CI can track both speedups over time.
// GOMAXPROCS is recorded because the parallel speedup is only
// meaningful with that many hardware threads to fan out over.
var searchBench = struct {
	Benchmark            string  `json:"benchmark"`
	Workers              int     `json:"workers"`
	GOMAXPROCS           int     `json:"gomaxprocs"`
	SequentialSearchNsOp float64 `json:"sequential_search_ns_per_op"`
	ParallelSearchNsOp   float64 `json:"parallel_search_ns_per_op"`
	Speedup              float64 `json:"speedup"`
	InterpreterNsOp      float64 `json:"interpreter_ns_per_op"`
	CompiledNsOp         float64 `json:"compiled_ns_per_op"`
	MatcherSpeedup       float64 `json:"matcher_speedup"`
}{Benchmark: "explore-search-seq-vs-parallel", Workers: searchBenchWorkers}

// obsBench accumulates the telemetry overhead pair: the NasRNN
// exploration with tracing and phase histograms off vs. on. TestMain
// writes the summary to BENCH_obs.json so CI can gate instrumentation
// drag (the acceptance budget is < 2% explore-time overhead).
var obsBench = struct {
	Benchmark       string  `json:"benchmark"`
	PlainNsOp       float64 `json:"plain_ns_per_op"`
	TelemetryNsOp   float64 `json:"telemetry_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
}{Benchmark: "nasrnn-explore-telemetry-overhead"}

// ilpBenchWorkers is the parallel worker count of the ILP benchmark
// pair (the acceptance point of the solver parallelization).
const ilpBenchWorkers = 4

// ilpBench accumulates the ILP extraction numbers: the anytime profile
// (time to first incumbent, time to the optimality proof) sequential vs
// parallel on a proof-hard instance, the optimality gap a budgeted
// solve returns at its deadline, and how much presolve shrinks a real
// explored e-graph model. TestMain writes the summary to BENCH_ilp.json
// so CI can track solver performance over time and gate the parallel
// solver against regressions.
var ilpBench = struct {
	Benchmark  string `json:"benchmark"`
	Workers    int    `json:"workers"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Anytime profile on the proof-hard instance, milliseconds.
	SeqFirstIncumbentMS float64 `json:"seq_first_incumbent_ms"`
	SeqOptimalMS        float64 `json:"seq_time_to_optimal_ms"`
	ParFirstIncumbentMS float64 `json:"par_first_incumbent_ms"`
	ParOptimalMS        float64 `json:"par_time_to_optimal_ms"`
	// Speedup is sequential over parallel time-to-optimal; the CI gate
	// keys on it (meaningful only with GOMAXPROCS >= workers).
	Speedup float64 `json:"speedup"`
	// SeqCost and ParCost are the returned objectives; the solvers must
	// agree exactly.
	SeqCost float64 `json:"seq_cost"`
	ParCost float64 `json:"par_cost"`
	// GapAtBudgetPercent is (incumbent-optimal)/optimal at an
	// artificially tight budget on a deceptive sharing instance.
	GapAtBudgetPercent float64 `json:"gap_at_budget_percent"`
	// PresolveRatio is the fraction of candidate nodes presolve removes
	// from the real NasRNN explored-e-graph model; PresolveNsOp is the
	// presolve pass runtime on that model.
	PresolveRatio float64 `json:"presolve_reduction_ratio"`
	PresolveNsOp  float64 `json:"presolve_ns_per_op"`
}{Benchmark: "ilp-extraction-seq-vs-parallel", Workers: ilpBenchWorkers}

func TestMain(m *testing.M) {
	code := m.Run()
	dirty := false
	if searchBench.SequentialSearchNsOp > 0 && searchBench.ParallelSearchNsOp > 0 {
		searchBench.Speedup = searchBench.SequentialSearchNsOp / searchBench.ParallelSearchNsOp
		dirty = true
	}
	if searchBench.InterpreterNsOp > 0 && searchBench.CompiledNsOp > 0 {
		searchBench.MatcherSpeedup = searchBench.InterpreterNsOp / searchBench.CompiledNsOp
		dirty = true
	}
	if dirty {
		searchBench.GOMAXPROCS = runtime.GOMAXPROCS(0)
		if data, err := json.MarshalIndent(searchBench, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_search.json", append(data, '\n'), 0o644)
		}
	}
	if obsBench.PlainNsOp > 0 && obsBench.TelemetryNsOp > 0 {
		// OverheadPercent was already estimated from paired ratios
		// inside the benchmark; just persist the summary.
		if data, err := json.MarshalIndent(obsBench, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644)
		}
	}
	if ilpBench.SeqOptimalMS > 0 && ilpBench.ParOptimalMS > 0 {
		ilpBench.Speedup = ilpBench.SeqOptimalMS / ilpBench.ParOptimalMS
		ilpBench.GOMAXPROCS = runtime.GOMAXPROCS(0)
		if data, err := json.MarshalIndent(ilpBench, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_ilp.json", append(data, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// BenchmarkExploreTelemetry measures the NasRNN exploration with all
// telemetry off and again with a live span recorder plus per-phase
// histogram observes — exactly what the daemon adds per job. The two
// arms run interleaved inside one loop so machine drift (frequency
// scaling, noisy neighbors) hits both equally; separate benchmark
// functions would let minutes of drift masquerade as overhead.
func BenchmarkExploreTelemetry(b *testing.B) {
	g := nasrnnGraph(b)
	phases := obs.NewRegistry().HistogramVec("bench_phase_seconds",
		"Per-phase latency.", obs.LatencyBuckets, "phase")
	exploreOnce := func(telemetry bool) time.Duration {
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = 1
		if telemetry {
			r.Trace = obs.NewTrace("optimize")
		}
		start := time.Now()
		ex, err := r.Run(g)
		d := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Stats.Matches == 0 {
			b.Fatal("explore benchmark found no matches; workload broken")
		}
		if telemetry {
			phases.With("explore").Observe(ex.Stats.ExploreTime.Seconds())
			phases.With("search").Observe(ex.Stats.SearchTime.Seconds())
			phases.With("apply").Observe(ex.Stats.ApplyTime.Seconds())
			phases.With("rebuild").Observe(ex.Stats.RebuildTime.Seconds())
			if r.Trace.Close() == nil {
				b.Fatal("telemetry run recorded no trace")
			}
		}
		return d
	}
	exploreOnce(true) // warm caches outside the measurement
	// Run the arms in back-to-back pairs, alternating which goes first
	// (cancels ordering bias from GC debt left by the previous run),
	// and estimate overhead as the median of per-pair ratios: machine
	// noise (frequency scaling, neighbors, GC outliers) is correlated
	// within a pair and cancels in the ratio, where independent means
	// would swing several percent run to run.
	plain := make([]float64, 0, b.N)
	telemetry := make([]float64, 0, b.N)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p, tl time.Duration
		if i%2 == 0 {
			p = exploreOnce(false)
			tl = exploreOnce(true)
		} else {
			tl = exploreOnce(true)
			p = exploreOnce(false)
		}
		plain = append(plain, float64(p))
		telemetry = append(telemetry, float64(tl))
		ratios = append(ratios, float64(tl)/float64(p))
	}
	b.StopTimer()
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	obsBench.PlainNsOp = median(plain)
	obsBench.TelemetryNsOp = median(telemetry)
	obsBench.OverheadPercent = (median(ratios) - 1) * 100
	b.ReportMetric(obsBench.PlainNsOp/1e6, "plain-ms/op")
	b.ReportMetric(obsBench.TelemetryNsOp/1e6, "telemetry-ms/op")
	b.ReportMetric(obsBench.OverheadPercent, "overhead-%")
}

// exploreSearchNs runs a saturating NasRNN exploration with the full
// rule set and returns the average time spent in the e-matching search
// phase per exploration (the part the Workers knob parallelizes).
func exploreSearchNs(b *testing.B, workers int) float64 {
	g := nasrnnGraph(b)
	var search time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = workers
		ex, err := r.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Stats.Matches == 0 {
			b.Fatal("search benchmark found no matches; workload broken")
		}
		search += ex.Stats.SearchTime
	}
	b.StopTimer()
	ns := float64(search.Nanoseconds()) / float64(b.N)
	b.ReportMetric(ns/1e6, "search-ms/op")
	return ns
}

// BenchmarkSearchSequential measures the search phase with Workers=1
// (the pre-parallelization behavior).
func BenchmarkSearchSequential(b *testing.B) {
	searchBench.SequentialSearchNsOp = exploreSearchNs(b, 1)
}

// BenchmarkSearchParallel measures the same workload with the search
// fanned out over a frozen e-graph view on 4 workers.
func BenchmarkSearchParallel(b *testing.B) {
	searchBench.ParallelSearchNsOp = exploreSearchNs(b, searchBenchWorkers)
}

// ilpEscapeRing builds the proof-hard anytime ILP instance: the root
// needs class 1, which offers a cost-100 escape leaf next to an m-class
// ring of "+1 hop"/"+2 hop" nodes that is infeasible under cycle
// constraints but only refutable by exhaustive search. The warm start
// (root + leaf, cost 101) is already optimal; the measured quantity is
// the optimality proof — the branch-and-bound refuting the entire ring.
// That makes it the adversarial case for time-to-optimal: no luck, no
// early exit, pure search throughput.
func ilpEscapeRing(m int) *ilp.Problem {
	p := &ilp.Problem{Root: 0, CycleConstraints: true}
	p.Costs = append(p.Costs, 1)
	p.ClassOf = append(p.ClassOf, 0)
	p.Children = append(p.Children, []int{1})
	p.Classes = append(p.Classes, []int{0})
	for i := 0; i < m; i++ {
		hop1 := 1 + (i+1)%m
		hop2 := 1 + (i+2)%m
		a := len(p.Costs)
		p.Costs = append(p.Costs, 1, 1)
		p.ClassOf = append(p.ClassOf, 1+i, 1+i)
		p.Children = append(p.Children, []int{hop1}, []int{hop2})
		p.Classes = append(p.Classes, []int{a, a + 1})
	}
	leaf := len(p.Costs)
	p.Costs = append(p.Costs, 100)
	p.ClassOf = append(p.ClassOf, 1)
	p.Children = append(p.Children, nil)
	p.Classes[1] = append(p.Classes[1], leaf)
	return p
}

// ilpBenchRing sizes the proof-hard ring so one optimality proof takes
// on the order of tens of milliseconds on a laptop core — long enough
// to parallelize, short enough for the bench suite.
const ilpBenchRing = 17

// ilpSolveBench measures the anytime profile of one solver
// configuration on the proof-hard instance: median time to the first
// incumbent and median time to the optimality proof.
func ilpSolveBench(b *testing.B, workers int) (firstMS, optimalMS, cost float64) {
	b.Helper()
	firsts := make([]float64, 0, b.N)
	optimals := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ilpEscapeRing(ilpBenchRing)
		var sol *ilp.Solution
		var err error
		if workers == 1 {
			sol, err = ilp.Solve(p)
		} else {
			sol, err = ilp.SolveParallel(p, workers)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Optimal {
			b.Fatalf("bench instance not solved to optimality: %+v", sol)
		}
		cost = sol.Cost
		firsts = append(firsts, float64(sol.FirstIncumbent.Nanoseconds())/1e6)
		optimals = append(optimals, float64(sol.Time.Nanoseconds())/1e6)
	}
	b.StopTimer()
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	firstMS, optimalMS = median(firsts), median(optimals)
	b.ReportMetric(firstMS, "first-incumbent-ms")
	b.ReportMetric(optimalMS, "time-to-optimal-ms")
	return firstMS, optimalMS, cost
}

// BenchmarkILPSequential measures the single-threaded branch-and-bound
// on the proof-hard instance.
func BenchmarkILPSequential(b *testing.B) {
	ilpBench.SeqFirstIncumbentMS, ilpBench.SeqOptimalMS, ilpBench.SeqCost = ilpSolveBench(b, 1)
}

// BenchmarkILPParallel measures the same proof fanned over the worker
// pool with a shared incumbent bound.
func BenchmarkILPParallel(b *testing.B) {
	ilpBench.ParFirstIncumbentMS, ilpBench.ParOptimalMS, ilpBench.ParCost = ilpSolveBench(b, ilpBenchWorkers)
}

// ilpDualHub builds the anytime-trajectory instance: the root needs
// classes D_1..D_k, each choosing between a leaf (cost 3) and a node
// u_i (cost 2) that needs BOTH shared hub classes S1 and S2 (cost 4
// each). The greedy warm start prices u_i as a tree (2+4+4 > 3) and
// picks every leaf (1+3k); the DAG optimum pays both hubs once
// (1+2k+8). Unlike a single hub, the pair defeats the seeding local
// search's hub moves — amortizing one hub at a time never shows a
// gain, because every switch still pays the other hub per-switch — so
// closing the gap takes genuine branch-and-bound, one incumbent at a
// time. CycleConstraints (the graph is acyclic, so they bind nothing)
// disable the solver's forced-choice shortcut that would otherwise
// collapse the plateau.
func ilpDualHub(k int) *ilp.Problem {
	p := &ilp.Problem{Root: 0, CycleConstraints: true}
	rootKids := make([]int, k)
	for i := range rootKids {
		rootKids[i] = i + 1
	}
	p.Costs = append(p.Costs, 1)
	p.ClassOf = append(p.ClassOf, 0)
	p.Children = append(p.Children, rootKids)
	p.Classes = append(p.Classes, []int{0})
	s1, s2 := k+1, k+2
	for i := 1; i <= k; i++ {
		u := len(p.Costs)
		p.Costs = append(p.Costs, 2, 3)
		p.ClassOf = append(p.ClassOf, i, i)
		p.Children = append(p.Children, []int{s1, s2}, nil)
		p.Classes = append(p.Classes, []int{u, u + 1})
	}
	for j := 0; j < 2; j++ {
		s := len(p.Costs)
		p.Costs = append(p.Costs, 4)
		p.ClassOf = append(p.ClassOf, k+1+j)
		p.Children = append(p.Children, nil)
		p.Classes = append(p.Classes, []int{s})
	}
	return p
}

// BenchmarkILPGapAtBudget measures the anytime answer quality when the
// solver is cut off early: the relative cost excess of the incumbent
// returned under a deterministic exploration budget (a stall limit in
// node expansions, so the measurement is machine-independent) against
// the unbudgeted optimum on the dual-hub instance. The budget is sized
// below the search's first incumbent improvement, so the budgeted
// answer is the deceived warm start and the gap is the full price of
// stopping early; a smarter seeding pass or faster search ordering
// shows up here as the gap shrinking toward zero.
func BenchmarkILPGapAtBudget(b *testing.B) {
	const k = 24
	ref, err := ilp.Solve(ilpDualHub(k))
	if err != nil {
		b.Fatal(err)
	}
	if !ref.Optimal || ref.Cost != float64(1+2*k+8) {
		b.Fatalf("reference solve did not reach the known optimum: %+v", ref)
	}
	var gapSum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ilpDualHub(k)
		p.StallLimit = 50
		sol, err := ilp.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		gapSum += (sol.Cost - ref.Cost) / ref.Cost * 100
	}
	b.StopTimer()
	ilpBench.GapAtBudgetPercent = gapSum / float64(b.N)
	b.ReportMetric(ilpBench.GapAtBudgetPercent, "gap-at-budget-%")
}

// ilpModelBench lazily builds a real extraction ILP: the NasRNN e-graph
// explored to benchmark size, formulated by extract.BuildProblem.
var ilpModelBench struct {
	once sync.Once
	err  error
	p    *ilp.Problem
}

func ilpModelFixture(b *testing.B) *ilp.Problem {
	b.Helper()
	ilpModelBench.once.Do(func() {
		g := nasrnnGraph(b)
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = 1
		ex, err := r.Run(g)
		if err != nil {
			ilpModelBench.err = err
			return
		}
		ilpModelBench.p, _, ilpModelBench.err = extract.BuildProblem(ex, cost.NewT4(), extract.ILPOptions{})
	})
	if ilpModelBench.err != nil {
		b.Fatal(ilpModelBench.err)
	}
	return ilpModelBench.p
}

// BenchmarkILPPresolve measures the presolve pass on the real NasRNN
// extraction model and records how much of the model it removes.
func BenchmarkILPPresolve(b *testing.B) {
	p := ilpModelFixture(b)
	var red presolve.Reduction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, red, err = presolve.Run(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if red.NodesDropped == 0 && red.VarsFixed == 0 {
		b.Fatal("presolve removed nothing from the real model; fixture broken")
	}
	ilpBench.PresolveRatio = red.Ratio()
	ilpBench.PresolveNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(ilpBench.PresolveRatio*100, "reduction-%")
}

// matcherBench lazily builds the matcher benchmark fixture: a nasrnn
// e-graph explored to the search benchmark's size, frozen, plus the
// rule set's canonical patterns (deduplicated exactly as the runner
// does) with their compiled programs.
var matcherBench struct {
	once  sync.Once
	err   error
	view  *egraph.View
	pats  []*pattern.Pat
	progs []*pattern.Program
}

func matcherFixture(b *testing.B) (*egraph.View, []*pattern.Pat, []*pattern.Program) {
	b.Helper()
	// Failures are stored, not b.Fatal-ed, inside the once: a Fatal
	// would mark the once done and leave the sibling benchmark to
	// nil-deref instead of reporting the real fixture error.
	matcherBench.once.Do(func() {
		g := nasrnnGraph(b)
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = 1
		ex, err := r.Run(g)
		if err != nil {
			matcherBench.err = err
			return
		}
		matcherBench.view = ex.G.Freeze()
		// The exact canonical pattern set the production search phase
		// runs, shared dedup logic included — so the interpreter and
		// compiled benchmarks measure the real workload.
		matcherBench.pats, matcherBench.progs = rewrite.CompileRules(rules.Default()).CanonicalPatterns()
	})
	if matcherBench.err != nil {
		b.Fatal(matcherBench.err)
	}
	return matcherBench.view, matcherBench.pats, matcherBench.progs
}

// BenchmarkMatcherInterpreter measures one full sequential search of
// every canonical pattern over the explored nasrnn e-graph using the
// old tree-walking interpreter (pattern.ReferenceSearchClasses): the
// pre-PR-5 engine, full class scan per pattern.
func BenchmarkMatcherInterpreter(b *testing.B) {
	view, pats, _ := matcherFixture(b)
	classes := view.Classes()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range pats {
			total += len(pattern.ReferenceSearchClasses(view, p, classes))
		}
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("interpreter found no matches; workload broken")
	}
	searchBench.InterpreterNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// BenchmarkMatcherCompiled measures the same full search with the
// compiled engine: pattern programs (compiled once, outside the
// timer) scanning only each pattern's op-index candidate classes.
func BenchmarkMatcherCompiled(b *testing.B) {
	view, _, progs := matcherFixture(b)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, prog := range progs {
			classes := view.Classes()
			if op, ok := prog.RootOp(); ok {
				classes = view.ByOp(op)
			}
			total += len(prog.AppendMatches(nil, view, classes))
		}
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("compiled engine found no matches; workload broken")
	}
	searchBench.CompiledNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// benchConfig sizes experiments so the full suite finishes in minutes.
func benchConfig() exp.Config {
	if os.Getenv("TENSAT_BENCH_FULL") != "" {
		return exp.Full()
	}
	c := exp.Default()
	c.NodeLimit = 10000
	c.IterLimit = 10
	c.TasoN = 15
	return c
}

// BenchmarkTable1 regenerates Table 1: optimization time and runtime
// speedup, TASO vs TENSAT, over all seven models.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable1(rows))
			var tensatSum, tasoSum float64
			for _, r := range rows {
				tensatSum += r.TensatSpeedup
				tasoSum += r.TasoSpeedup
			}
			b.ReportMetric(tensatSum/float64(len(rows)), "tensat-speedup-%")
			b.ReportMetric(tasoSum/float64(len(rows)), "taso-speedup-%")
		}
	}
}

// BenchmarkTable3 regenerates Table 3: TENSAT's optimization-time
// breakdown (exploration vs extraction).
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable3(rows))
		}
	}
}

// BenchmarkTable4 regenerates Table 4: greedy vs ILP extraction.
func BenchmarkTable4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable4(rows))
			for _, r := range rows {
				if r.Model == "NasRNN" {
					b.ReportMetric(r.Greedy/r.ILP, "nasrnn-greedy/ilp")
				}
			}
		}
	}
}

// BenchmarkTable5 regenerates Table 5: ILP time with vs without cycle
// constraints (real and integer topological variables).
func BenchmarkTable5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table5(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable5(rows))
		}
	}
}

// BenchmarkTable6 regenerates Table 6: vanilla vs efficient cycle
// filtering exploration time.
func BenchmarkTable6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table6(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable6(rows))
			var van, eff float64
			for _, r := range rows {
				van += r.Vanilla.Seconds()
				eff += r.Efficient.Seconds()
			}
			if eff > 0 {
				b.ReportMetric(van/eff, "vanilla/efficient")
			}
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-model speedups with error
// bars, including the Inception-v3 k_multi=2 point.
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure4(rows))
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: optimizer times (TASO total /
// TASO best / TENSAT) and the speedup ratios.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure5(rows))
			var maxRatio float64
			for _, r := range rows {
				if r.Ratio > maxRatio {
					maxRatio = r.Ratio
				}
			}
			b.ReportMetric(maxRatio, "max-taso/tensat-time")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: speedup over optimizer time
// on Inception-v3.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tn, ts, err := cfg.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure6(tn, ts))
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the effect of k_multi on
// speedup, optimizer time, and e-graph size.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure7(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure7(rows))
			var maxNodes int
			for _, r := range rows {
				if r.ENodes > maxNodes {
					maxNodes = r.ENodes
				}
			}
			b.ReportMetric(float64(maxNodes), "max-enodes")
		}
	}
}
