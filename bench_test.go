// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6). Each benchmark runs one experiment end to end and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Absolute numbers come from the
// simulated device (see internal/cost); EXPERIMENTS.md records how the
// shapes compare with the paper. Set TENSAT_BENCH_FULL=1 to use the
// paper-scale configuration instead of the CPU-friendly default.
package tensat_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"tensat/internal/egraph"
	"tensat/internal/exp"
	"tensat/internal/obs"
	"tensat/internal/pattern"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
)

// searchBenchWorkers is the parallel worker count of the search-phase
// benchmark pair below (the acceptance point of the Workers knob).
const searchBenchWorkers = 4

// searchBench accumulates the search-phase numbers: the explore-level
// sequential-vs-parallel split (Workers knob) and the matcher-level
// interpreter-vs-compiled split (the PR-5 engine swap). When the
// benchmarks have run, TestMain writes the summary to
// BENCH_search.json so CI can track both speedups over time.
// GOMAXPROCS is recorded because the parallel speedup is only
// meaningful with that many hardware threads to fan out over.
var searchBench = struct {
	Benchmark            string  `json:"benchmark"`
	Workers              int     `json:"workers"`
	GOMAXPROCS           int     `json:"gomaxprocs"`
	SequentialSearchNsOp float64 `json:"sequential_search_ns_per_op"`
	ParallelSearchNsOp   float64 `json:"parallel_search_ns_per_op"`
	Speedup              float64 `json:"speedup"`
	InterpreterNsOp      float64 `json:"interpreter_ns_per_op"`
	CompiledNsOp         float64 `json:"compiled_ns_per_op"`
	MatcherSpeedup       float64 `json:"matcher_speedup"`
}{Benchmark: "explore-search-seq-vs-parallel", Workers: searchBenchWorkers}

// obsBench accumulates the telemetry overhead pair: the NasRNN
// exploration with tracing and phase histograms off vs. on. TestMain
// writes the summary to BENCH_obs.json so CI can gate instrumentation
// drag (the acceptance budget is < 2% explore-time overhead).
var obsBench = struct {
	Benchmark       string  `json:"benchmark"`
	PlainNsOp       float64 `json:"plain_ns_per_op"`
	TelemetryNsOp   float64 `json:"telemetry_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
}{Benchmark: "nasrnn-explore-telemetry-overhead"}

func TestMain(m *testing.M) {
	code := m.Run()
	dirty := false
	if searchBench.SequentialSearchNsOp > 0 && searchBench.ParallelSearchNsOp > 0 {
		searchBench.Speedup = searchBench.SequentialSearchNsOp / searchBench.ParallelSearchNsOp
		dirty = true
	}
	if searchBench.InterpreterNsOp > 0 && searchBench.CompiledNsOp > 0 {
		searchBench.MatcherSpeedup = searchBench.InterpreterNsOp / searchBench.CompiledNsOp
		dirty = true
	}
	if dirty {
		searchBench.GOMAXPROCS = runtime.GOMAXPROCS(0)
		if data, err := json.MarshalIndent(searchBench, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_search.json", append(data, '\n'), 0o644)
		}
	}
	if obsBench.PlainNsOp > 0 && obsBench.TelemetryNsOp > 0 {
		// OverheadPercent was already estimated from paired ratios
		// inside the benchmark; just persist the summary.
		if data, err := json.MarshalIndent(obsBench, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// BenchmarkExploreTelemetry measures the NasRNN exploration with all
// telemetry off and again with a live span recorder plus per-phase
// histogram observes — exactly what the daemon adds per job. The two
// arms run interleaved inside one loop so machine drift (frequency
// scaling, noisy neighbors) hits both equally; separate benchmark
// functions would let minutes of drift masquerade as overhead.
func BenchmarkExploreTelemetry(b *testing.B) {
	g := nasrnnGraph(b)
	phases := obs.NewRegistry().HistogramVec("bench_phase_seconds",
		"Per-phase latency.", obs.LatencyBuckets, "phase")
	exploreOnce := func(telemetry bool) time.Duration {
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = 1
		if telemetry {
			r.Trace = obs.NewTrace("optimize")
		}
		start := time.Now()
		ex, err := r.Run(g)
		d := time.Since(start)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Stats.Matches == 0 {
			b.Fatal("explore benchmark found no matches; workload broken")
		}
		if telemetry {
			phases.With("explore").Observe(ex.Stats.ExploreTime.Seconds())
			phases.With("search").Observe(ex.Stats.SearchTime.Seconds())
			phases.With("apply").Observe(ex.Stats.ApplyTime.Seconds())
			phases.With("rebuild").Observe(ex.Stats.RebuildTime.Seconds())
			if r.Trace.Close() == nil {
				b.Fatal("telemetry run recorded no trace")
			}
		}
		return d
	}
	exploreOnce(true) // warm caches outside the measurement
	// Run the arms in back-to-back pairs, alternating which goes first
	// (cancels ordering bias from GC debt left by the previous run),
	// and estimate overhead as the median of per-pair ratios: machine
	// noise (frequency scaling, neighbors, GC outliers) is correlated
	// within a pair and cancels in the ratio, where independent means
	// would swing several percent run to run.
	plain := make([]float64, 0, b.N)
	telemetry := make([]float64, 0, b.N)
	ratios := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p, tl time.Duration
		if i%2 == 0 {
			p = exploreOnce(false)
			tl = exploreOnce(true)
		} else {
			tl = exploreOnce(true)
			p = exploreOnce(false)
		}
		plain = append(plain, float64(p))
		telemetry = append(telemetry, float64(tl))
		ratios = append(ratios, float64(tl)/float64(p))
	}
	b.StopTimer()
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		return xs[len(xs)/2]
	}
	obsBench.PlainNsOp = median(plain)
	obsBench.TelemetryNsOp = median(telemetry)
	obsBench.OverheadPercent = (median(ratios) - 1) * 100
	b.ReportMetric(obsBench.PlainNsOp/1e6, "plain-ms/op")
	b.ReportMetric(obsBench.TelemetryNsOp/1e6, "telemetry-ms/op")
	b.ReportMetric(obsBench.OverheadPercent, "overhead-%")
}

// exploreSearchNs runs a saturating NasRNN exploration with the full
// rule set and returns the average time spent in the e-matching search
// phase per exploration (the part the Workers knob parallelizes).
func exploreSearchNs(b *testing.B, workers int) float64 {
	g := nasrnnGraph(b)
	var search time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = workers
		ex, err := r.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		if ex.Stats.Matches == 0 {
			b.Fatal("search benchmark found no matches; workload broken")
		}
		search += ex.Stats.SearchTime
	}
	b.StopTimer()
	ns := float64(search.Nanoseconds()) / float64(b.N)
	b.ReportMetric(ns/1e6, "search-ms/op")
	return ns
}

// BenchmarkSearchSequential measures the search phase with Workers=1
// (the pre-parallelization behavior).
func BenchmarkSearchSequential(b *testing.B) {
	searchBench.SequentialSearchNsOp = exploreSearchNs(b, 1)
}

// BenchmarkSearchParallel measures the same workload with the search
// fanned out over a frozen e-graph view on 4 workers.
func BenchmarkSearchParallel(b *testing.B) {
	searchBench.ParallelSearchNsOp = exploreSearchNs(b, searchBenchWorkers)
}

// matcherBench lazily builds the matcher benchmark fixture: a nasrnn
// e-graph explored to the search benchmark's size, frozen, plus the
// rule set's canonical patterns (deduplicated exactly as the runner
// does) with their compiled programs.
var matcherBench struct {
	once  sync.Once
	err   error
	view  *egraph.View
	pats  []*pattern.Pat
	progs []*pattern.Program
}

func matcherFixture(b *testing.B) (*egraph.View, []*pattern.Pat, []*pattern.Program) {
	b.Helper()
	// Failures are stored, not b.Fatal-ed, inside the once: a Fatal
	// would mark the once done and leave the sibling benchmark to
	// nil-deref instead of reporting the real fixture error.
	matcherBench.once.Do(func() {
		g := nasrnnGraph(b)
		r := rewrite.NewRunner(rules.Default())
		r.Limits = rewrite.Limits{MaxNodes: 8000, MaxIters: 6, KMulti: 1, Timeout: time.Hour}
		r.Workers = 1
		ex, err := r.Run(g)
		if err != nil {
			matcherBench.err = err
			return
		}
		matcherBench.view = ex.G.Freeze()
		// The exact canonical pattern set the production search phase
		// runs, shared dedup logic included — so the interpreter and
		// compiled benchmarks measure the real workload.
		matcherBench.pats, matcherBench.progs = rewrite.CompileRules(rules.Default()).CanonicalPatterns()
	})
	if matcherBench.err != nil {
		b.Fatal(matcherBench.err)
	}
	return matcherBench.view, matcherBench.pats, matcherBench.progs
}

// BenchmarkMatcherInterpreter measures one full sequential search of
// every canonical pattern over the explored nasrnn e-graph using the
// old tree-walking interpreter (pattern.ReferenceSearchClasses): the
// pre-PR-5 engine, full class scan per pattern.
func BenchmarkMatcherInterpreter(b *testing.B) {
	view, pats, _ := matcherFixture(b)
	classes := view.Classes()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range pats {
			total += len(pattern.ReferenceSearchClasses(view, p, classes))
		}
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("interpreter found no matches; workload broken")
	}
	searchBench.InterpreterNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// BenchmarkMatcherCompiled measures the same full search with the
// compiled engine: pattern programs (compiled once, outside the
// timer) scanning only each pattern's op-index candidate classes.
func BenchmarkMatcherCompiled(b *testing.B) {
	view, _, progs := matcherFixture(b)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, prog := range progs {
			classes := view.Classes()
			if op, ok := prog.RootOp(); ok {
				classes = view.ByOp(op)
			}
			total += len(prog.AppendMatches(nil, view, classes))
		}
	}
	b.StopTimer()
	if total == 0 {
		b.Fatal("compiled engine found no matches; workload broken")
	}
	searchBench.CompiledNsOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
}

// benchConfig sizes experiments so the full suite finishes in minutes.
func benchConfig() exp.Config {
	if os.Getenv("TENSAT_BENCH_FULL") != "" {
		return exp.Full()
	}
	c := exp.Default()
	c.NodeLimit = 10000
	c.IterLimit = 10
	c.TasoN = 15
	return c
}

// BenchmarkTable1 regenerates Table 1: optimization time and runtime
// speedup, TASO vs TENSAT, over all seven models.
func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable1(rows))
			var tensatSum, tasoSum float64
			for _, r := range rows {
				tensatSum += r.TensatSpeedup
				tasoSum += r.TasoSpeedup
			}
			b.ReportMetric(tensatSum/float64(len(rows)), "tensat-speedup-%")
			b.ReportMetric(tasoSum/float64(len(rows)), "taso-speedup-%")
		}
	}
}

// BenchmarkTable3 regenerates Table 3: TENSAT's optimization-time
// breakdown (exploration vs extraction).
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable3(rows))
		}
	}
}

// BenchmarkTable4 regenerates Table 4: greedy vs ILP extraction.
func BenchmarkTable4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable4(rows))
			for _, r := range rows {
				if r.Model == "NasRNN" {
					b.ReportMetric(r.Greedy/r.ILP, "nasrnn-greedy/ilp")
				}
			}
		}
	}
}

// BenchmarkTable5 regenerates Table 5: ILP time with vs without cycle
// constraints (real and integer topological variables).
func BenchmarkTable5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table5(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable5(rows))
		}
	}
}

// BenchmarkTable6 regenerates Table 6: vanilla vs efficient cycle
// filtering exploration time.
func BenchmarkTable6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Table6(1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatTable6(rows))
			var van, eff float64
			for _, r := range rows {
				van += r.Vanilla.Seconds()
				eff += r.Efficient.Seconds()
			}
			if eff > 0 {
				b.ReportMetric(van/eff, "vanilla/efficient")
			}
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: per-model speedups with error
// bars, including the Inception-v3 k_multi=2 point.
func BenchmarkFigure4(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure4(rows))
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: optimizer times (TASO total /
// TASO best / TENSAT) and the speedup ratios.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure5(rows))
			var maxRatio float64
			for _, r := range rows {
				if r.Ratio > maxRatio {
					maxRatio = r.Ratio
				}
			}
			b.ReportMetric(maxRatio, "max-taso/tensat-time")
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: speedup over optimizer time
// on Inception-v3.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tn, ts, err := cfg.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure6(tn, ts))
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the effect of k_multi on
// speedup, optimizer time, and e-graph size.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := cfg.Figure7(3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + exp.FormatFigure7(rows))
			var maxNodes int
			for _, r := range rows {
				if r.ENodes > maxNodes {
					maxNodes = r.ENodes
				}
			}
			b.ReportMetric(float64(maxNodes), "max-enodes")
		}
	}
}
