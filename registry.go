package tensat

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tensat/internal/cost"
	"tensat/internal/rewrite"
	"tensat/internal/rulecheck"
	"tensat/internal/rules"
)

// DeviceSpec is the declarative form of a simulated device — the JSON
// schema of the files tensatd loads with -device-dir. See
// internal/cost.Spec for the field reference.
type DeviceSpec = cost.Spec

// ParseDeviceSpec decodes and validates a JSON device spec.
func ParseDeviceSpec(data []byte) (*DeviceSpec, error) { return cost.ParseSpec(data) }

// Names of the built-in profiles every Registry starts with.
const (
	// DefaultRuleSetName is the full TASO-style set (single- and
	// multi-pattern rules) — what an Options with no profile uses.
	DefaultRuleSetName = "taso-default"
	// SingleRuleSetName is the single-pattern subset.
	SingleRuleSetName = "taso-single"
	// DefaultCostModelName is the simulated T4 device.
	DefaultCostModelName = "t4"
)

// ErrUnknownProfile marks a RuleSet or CostModelName that no registry
// entry answers to; transports classify it as a client error.
var ErrUnknownProfile = errors.New("tensat: unknown profile")

// RuleVetMode selects what rule-set loading does with findings from
// the static rule verifier (internal/rulecheck). Error-severity
// findings (shape-unsound rewrites) always fail the load — except
// under RuleVetOff — because applying such a rule silently corrupts
// tensor shapes; the mode only decides the fate of warnings.
type RuleVetMode int

const (
	// RuleVetWarn (the default) records warning-severity findings in
	// RuleSetInfo.VetWarnings for the caller to surface, and loads the
	// set anyway.
	RuleVetWarn RuleVetMode = iota
	// RuleVetStrict fails the load on any finding, warnings included.
	RuleVetStrict
	// RuleVetOff skips verification entirely.
	RuleVetOff
)

// RuleSetInfo describes one registered rule set.
type RuleSetInfo struct {
	// Name is the registry key, selectable as Options.RuleSet.
	Name string
	// Hash is the content hash (rule names + canonical pattern
	// s-expressions, see internal/rules.Hash): stable across process
	// restarts and registry reloads as long as the rules are unchanged.
	Hash string
	// Rules counts the rules; MultiRules counts the multi-pattern
	// subset of them.
	Rules, MultiRules int
	// Source records provenance: "builtin", a file path, or "code".
	Source string
	// VetWarnings holds warning-severity findings from the static rule
	// verifier (internal/rulecheck) recorded when the set was loaded
	// from a file: rules that can never fire, dead targets, or target
	// operators the default cost model prices at +Inf (so extraction
	// could never choose them). Empty for builtin/programmatic sets and
	// under RuleVetOff; under RuleVetStrict warnings fail the load
	// instead of landing here.
	VetWarnings []string
}

// CostModelInfo describes one registered cost model.
type CostModelInfo struct {
	// Name is the registry key, selectable as Options.CostModelName.
	Name string
	// Hash is the content hash of the device parameters (name
	// excluded), stable across restarts while the parameters hold.
	Hash string
	// Params counts tunable parameters (0 for opaque Go models).
	Params int
	// Source records provenance: "builtin", a file path, or "code".
	Source string
}

type ruleSetEntry struct {
	rules []*Rule
	// compiled is the e-matching form of rules — canonical patterns
	// compiled to pattern programs (rewrite.CompileRules) — built once
	// at registration so every job resolving this set shares the same
	// immutable programs instead of recompiling per run.
	compiled *rewrite.CompiledRules
	info     RuleSetInfo
}

type costModelEntry struct {
	model CostModel
	info  CostModelInfo
}

// Registry resolves optimization profiles — named rewrite rule sets
// and named device cost models — for Optimizer and the serving layer.
// Every Registry starts with the built-ins (rule sets taso-default and
// taso-single; devices t4, a100 and cpu) and can load more at runtime:
// rule sets from .rules files (see internal/rules ParseRuleSet for the
// line format) and cost models from JSON device specs (DeviceSpec).
// Rules are compiled once, at registration, so resolving a name per
// job is a map lookup — the per-rule-set generalization of the old
// compile-once sync.Once. All methods are safe for concurrent use;
// re-registering a name atomically replaces it, and because cache keys
// are derived from content hashes rather than names, a reload keeps
// serving-cache entries exactly when the content is unchanged.
type Registry struct {
	mu         sync.RWMutex
	ruleSets   map[string]*ruleSetEntry
	costModels map[string]*costModelEntry
	vetMode    RuleVetMode
}

// NewRegistry returns a registry holding the built-in profiles. The
// single-pattern rules are compiled once and shared between the
// taso-single set and the taso-default set that extends it.
func NewRegistry() *Registry {
	r := &Registry{
		ruleSets:   make(map[string]*ruleSetEntry),
		costModels: make(map[string]*costModelEntry),
	}
	single := rules.Single()
	multi := rules.Multi()
	def := append(append(make([]*Rule, 0, len(single)+len(multi)), single...), multi...)
	r.putRuleSet(DefaultRuleSetName, def, "builtin")
	r.putRuleSet(SingleRuleSetName, single, "builtin")
	for _, spec := range []*DeviceSpec{cost.T4Spec(), cost.A100Spec(), cost.CPUSpec()} {
		r.putCostModel(spec.Name, spec.Model(), spec.Hash(), spec.Params(), "builtin")
	}
	return r
}

// defaultRegistry builds the process-wide registry on first use, so
// programs that never resolve a profile (custom-rules library users, a
// CLI exiting on a usage error) skip the built-in rule compilation.
var defaultRegistry = sync.OnceValue(NewRegistry)

// DefaultRegistry returns the process-wide registry that Optimizer and
// the serving layer use unless given another (WithRegistry,
// serve.Config.Registry).
func DefaultRegistry() *Registry { return defaultRegistry() }

func (r *Registry) putRuleSet(name string, rs []*Rule, source string) {
	r.putRuleSetVetted(name, rs, source, nil)
}

func (r *Registry) putRuleSetVetted(name string, rs []*Rule, source string, vetWarnings []string) {
	multi := 0
	for _, rule := range rs {
		if rule.IsMulti() {
			multi++
		}
	}
	r.mu.Lock()
	r.ruleSets[name] = &ruleSetEntry{
		rules:    rs,
		compiled: rewrite.CompileRules(rs),
		info: RuleSetInfo{
			Name:        name,
			Hash:        rules.Hash(rs),
			Rules:       len(rs),
			MultiRules:  multi,
			Source:      source,
			VetWarnings: vetWarnings,
		},
	}
	r.mu.Unlock()
}

// SetRuleVetMode selects how subsequent LoadRuleFile/LoadRulesDir
// calls treat static-verifier findings. Safe for concurrent use.
func (r *Registry) SetRuleVetMode(m RuleVetMode) {
	r.mu.Lock()
	r.vetMode = m
	r.mu.Unlock()
}

// vetRuleFile runs the static rule verifier over a parsed rule file,
// pricing targets against the default cost model. It returns the
// warning strings to record, or an error when the findings must fail
// the load (any error-severity finding; under RuleVetStrict, any
// finding at all).
func (r *Registry) vetRuleFile(path string, rs []*Rule) ([]string, error) {
	r.mu.RLock()
	mode := r.vetMode
	r.mu.RUnlock()
	if mode == RuleVetOff {
		return nil, nil
	}
	model, ok := r.CostModel(DefaultCostModelName)
	if !ok {
		model = cost.NewT4()
	}
	findings := rulecheck.CheckRules(path, rs, model)
	if len(findings) == 0 {
		return nil, nil
	}
	var warns []string
	fatal := false
	for _, f := range findings {
		if f.Severity == rulecheck.SevError || mode == RuleVetStrict {
			fatal = true
		}
		warns = append(warns, f.String())
	}
	if fatal {
		return nil, fmt.Errorf("tensat: rule vet failed for %s:\n  %s", path, strings.Join(warns, "\n  "))
	}
	return warns, nil
}

func (r *Registry) putCostModel(name string, m CostModel, hash string, params int, source string) {
	r.mu.Lock()
	r.costModels[name] = &costModelEntry{
		model: m,
		info:  CostModelInfo{Name: name, Hash: hash, Params: params, Source: source},
	}
	r.mu.Unlock()
}

// checkProfileName gates every name that enters the registry: the
// conservative identifier alphabet shared with rule names, and never
// "custom" — the label the serving layer reserves for programmatic
// (unnamed) rule/model overrides.
func checkProfileName(name string) error {
	if err := rules.CheckName(name); err != nil {
		return fmt.Errorf("tensat: profile %v", err)
	}
	if name == "custom" {
		return fmt.Errorf("tensat: profile name %q is reserved", name)
	}
	return nil
}

// RegisterRuleSet registers (or replaces) a named rule set built in Go
// code. The content hash is computed from the rules themselves.
func (r *Registry) RegisterRuleSet(name string, rs []*Rule) error {
	if err := checkProfileName(name); err != nil {
		return err
	}
	if len(rs) == 0 {
		return fmt.Errorf("tensat: rule set %q is empty", name)
	}
	r.putRuleSet(name, rs, "code")
	return nil
}

// RegisterDevice registers (or replaces) a cost model from a validated
// device spec, under the spec's own name.
func (r *Registry) RegisterDevice(spec *DeviceSpec) error {
	if spec == nil {
		return fmt.Errorf("tensat: nil device spec")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := checkProfileName(spec.Name); err != nil {
		return err
	}
	r.putCostModel(spec.Name, spec.Model(), spec.Hash(), spec.Params(), "code")
	return nil
}

// RegisterCostModel registers (or replaces) an opaque Go cost model.
// contentHash must be a stable identifier of the model's pricing
// behavior (bump it when the model changes): it feeds the serving
// cache key, so a stale hash would let results computed under the old
// behavior answer requests for the new one.
func (r *Registry) RegisterCostModel(name string, m CostModel, contentHash string) error {
	if err := checkProfileName(name); err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("tensat: cost model %q is nil", name)
	}
	if contentHash == "" {
		return fmt.Errorf("tensat: cost model %q needs a content hash", name)
	}
	r.putCostModel(name, m, contentHash, 0, "code")
	return nil
}

// parseRuleFile compiles and validates one .rules file without
// touching the registry.
func parseRuleFile(path string) (name string, rs []*Rule, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("tensat: %w", err)
	}
	name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	if err := checkProfileName(name); err != nil {
		return "", nil, fmt.Errorf("%w (derived from file name %s)", err, path)
	}
	rs, err = rules.ParseRuleSet(path, data)
	if err != nil {
		return "", nil, err
	}
	return name, rs, nil
}

// LoadRuleFile loads a .rules file and registers it under the file's
// base name (merge.rules -> "merge"). The whole file is compiled,
// validated and statically vetted (see RuleVetMode) before anything
// is registered: on any error the registry is unchanged. Non-fatal
// verifier findings land in the returned RuleSetInfo.VetWarnings.
func (r *Registry) LoadRuleFile(path string) (RuleSetInfo, error) {
	name, rs, err := parseRuleFile(path)
	if err != nil {
		return RuleSetInfo{}, err
	}
	warns, err := r.vetRuleFile(path, rs)
	if err != nil {
		return RuleSetInfo{}, err
	}
	r.putRuleSetVetted(name, rs, path, warns)
	info, _ := r.RuleSetInfo(name)
	return info, nil
}

// LoadRulesDir loads every *.rules file in dir (sorted by name).
// The load is atomic across the directory: every file is compiled and
// validated first, and one unsound file fails the whole call with the
// registry unchanged — no half-loaded profile set.
func (r *Registry) LoadRulesDir(dir string) ([]RuleSetInfo, error) {
	paths, err := dirFiles(dir, ".rules")
	if err != nil {
		return nil, err
	}
	type staged struct {
		name, path string
		rs         []*Rule
		warns      []string
	}
	stage := make([]staged, 0, len(paths))
	for _, p := range paths {
		name, rs, err := parseRuleFile(p)
		if err != nil {
			return nil, err
		}
		warns, err := r.vetRuleFile(p, rs)
		if err != nil {
			return nil, err
		}
		stage = append(stage, staged{name: name, path: p, rs: rs, warns: warns})
	}
	infos := make([]RuleSetInfo, 0, len(stage))
	for _, s := range stage {
		r.putRuleSetVetted(s.name, s.rs, s.path, s.warns)
		info, _ := r.RuleSetInfo(s.name)
		infos = append(infos, info)
	}
	return infos, nil
}

// parseDeviceFile decodes and validates one JSON device spec without
// touching the registry.
func parseDeviceFile(path string) (*DeviceSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tensat: %w", err)
	}
	spec, err := cost.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("tensat: %s: %w", path, err)
	}
	if err := checkProfileName(spec.Name); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return spec, nil
}

// LoadDeviceFile loads a JSON device spec and registers its cost model
// under the spec's "name" field; on any error the registry is
// unchanged.
func (r *Registry) LoadDeviceFile(path string) (CostModelInfo, error) {
	spec, err := parseDeviceFile(path)
	if err != nil {
		return CostModelInfo{}, err
	}
	r.putCostModel(spec.Name, spec.Model(), spec.Hash(), spec.Params(), path)
	info, _ := r.CostModelInfo(spec.Name)
	return info, nil
}

// LoadDevicesDir loads every *.json device spec in dir (sorted by
// name), atomically across the directory: one invalid file fails the
// whole call with the registry unchanged.
func (r *Registry) LoadDevicesDir(dir string) ([]CostModelInfo, error) {
	paths, err := dirFiles(dir, ".json")
	if err != nil {
		return nil, err
	}
	type staged struct {
		spec *DeviceSpec
		path string
	}
	stage := make([]staged, 0, len(paths))
	for _, p := range paths {
		spec, err := parseDeviceFile(p)
		if err != nil {
			return nil, err
		}
		stage = append(stage, staged{spec: spec, path: p})
	}
	infos := make([]CostModelInfo, 0, len(stage))
	for _, s := range stage {
		r.putCostModel(s.spec.Name, s.spec.Model(), s.spec.Hash(), s.spec.Params(), s.path)
		info, _ := r.CostModelInfo(s.spec.Name)
		infos = append(infos, info)
	}
	return infos, nil
}

func dirFiles(dir, ext string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tensat: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ext) {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// RuleSet resolves a named rule set to its compiled rules.
func (r *Registry) RuleSet(name string) ([]*Rule, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.ruleSets[name]
	if !ok {
		return nil, false
	}
	return e.rules, true
}

// compiledRuleSet resolves a named rule set to its registration-time
// pattern-program compilation (always present alongside the rules).
func (r *Registry) compiledRuleSet(name string) (*rewrite.CompiledRules, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.ruleSets[name]
	if !ok {
		return nil, false
	}
	return e.compiled, true
}

// RuleSetInfo reports a named rule set's metadata.
func (r *Registry) RuleSetInfo(name string) (RuleSetInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.ruleSets[name]
	if !ok {
		return RuleSetInfo{}, false
	}
	return e.info, true
}

// CostModel resolves a named cost model.
func (r *Registry) CostModel(name string) (CostModel, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.costModels[name]
	if !ok {
		return nil, false
	}
	return e.model, true
}

// CostModelInfo reports a named cost model's metadata.
func (r *Registry) CostModelInfo(name string) (CostModelInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.costModels[name]
	if !ok {
		return CostModelInfo{}, false
	}
	return e.info, true
}

// RuleSets lists all registered rule sets, sorted by name.
func (r *Registry) RuleSets() []RuleSetInfo {
	r.mu.RLock()
	out := make([]RuleSetInfo, 0, len(r.ruleSets))
	for _, e := range r.ruleSets {
		out = append(out, e.info)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CostModels lists all registered cost models, sorted by name.
func (r *Registry) CostModels() []CostModelInfo {
	r.mu.RLock()
	out := make([]CostModelInfo, 0, len(r.costModels))
	for _, e := range r.costModels {
		out = append(out, e.info)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RuleSetNames lists registered rule set names, sorted — the "known
// names" of an ErrUnknownProfile message.
func (r *Registry) RuleSetNames() []string {
	infos := r.RuleSets()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// CostModelNames lists registered cost model names, sorted.
func (r *Registry) CostModelNames() []string {
	infos := r.CostModels()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}
