// Package tensat is a Go implementation of TENSAT (Yang et al., MLSys
// 2021): tensor computation graph superoptimization via equality
// saturation. Instead of applying graph substitutions sequentially
// (and suffering the phase-ordering problem), TENSAT applies all
// rewrites simultaneously into an e-graph and extracts the globally
// cheapest equivalent graph with an ILP.
//
// Quick start:
//
//	b := tensat.NewBuilder()
//	x := b.Input("x", 64, 256)
//	w1 := b.Weight("w1", 256, 256)
//	w2 := b.Weight("w2", 256, 256)
//	g := b.MustFinish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
//	res, err := tensat.Optimize(g, tensat.DefaultOptions())
//	// res.Graph now computes both outputs with one merged matmul.
//
// The root package re-exports the tensor IR (see the tensor aliases
// below) and drives the internal packages: internal/egraph (the
// e-graph substrate), internal/rewrite (exploration with multi-pattern
// rewrites and cycle filtering), internal/rules (the TASO-style rule
// set), internal/extract and internal/ilp (greedy and ILP extraction),
// and internal/cost (the simulated device cost model).
//
// # Jobs and live progress
//
// Optimization runs are long (the paper budgets the ILP a full hour),
// so the primary API is asynchronous: an Optimizer compiles the rule
// set and cost model once and is reused for any number of jobs, and
// Submit returns a Job handle immediately:
//
//	o := tensat.NewOptimizer()
//	job, err := o.Submit(ctx, g, tensat.DefaultOptions())
//	// ... job.Progress() for live snapshots, job.Cancel() to abort ...
//	res, err := job.Result() // blocks until done
//
// Job.Progress() snapshots the running pipeline — phase, exploration
// iteration, e-graph sizes, the ILP incumbent cost, elapsed time —
// and Options.Progress registers a push sink receiving every update.
// Optimize and OptimizeContext remain as synchronous one-shot shims
// over this machinery.
//
// # Optimization profiles
//
// The pipeline is parameterized by its rewrite rule set and its device
// cost model. Registry makes both first-class, content-addressed
// resources: built-in profiles (rule sets "taso-default" and
// "taso-single"; devices "t4", "a100", "cpu") are registered at init,
// and more load at runtime from .rules files (one "name: lhs => rhs"
// or "lhs <=> rhs" per line) and JSON device specs (DeviceSpec: peak
// FLOP/s, memory bandwidth, per-op overrides). Options.RuleSet and
// Options.CostModelName select profiles by name per job; every
// profile carries a content hash (rule names + pattern s-exprs;
// device parameters) that the serving layer folds into its cache key,
// so identical graphs optimized under different profiles never share
// a cache entry while a reloaded-but-unchanged profile keeps its
// entries.
//
// # Optimization as a service
//
// The repository also ships the pipeline as a service.
// internal/fingerprint canonically content-hashes graphs (structurally
// identical graphs map to one SHA-256 key regardless of node insertion
// order or input names); internal/serve wraps the pipeline in a
// concurrent service with an LRU result cache keyed by
// fingerprint+options, singleflight deduplication of in-flight
// identical requests, a bounded worker pool, a TTL-bounded job store,
// and latency/hit-rate statistics; and cmd/tensatd exposes it over
// HTTP+JSON:
//
//	POST   /v1/jobs             — submit a job (202 + id)
//	GET    /v1/jobs             — list tracked jobs (status, age, profile)
//	GET    /v1/jobs/{id}        — status + live progress
//	GET    /v1/jobs/{id}/result — the result once done
//	DELETE /v1/jobs/{id}        — cancel
//	GET    /v1/jobs/{id}/events — progress as server-sent events
//	GET    /v1/rulesets         — named rule sets + content hashes
//	GET    /v1/costmodels       — named cost models + content hashes
//	GET    /v1/version          — build/runtime identification
//	GET    /v1/stats            — cache, latency, job and profile counters
//	GET    /v1/healthz          — liveness
//	POST   /optimize            — deprecated synchronous shim
//	GET    /stats, /healthz     — deprecated pre-/v1 spellings
//
// Graphs travel in the textual wire format of Graph.MarshalText
// (S-expressions with let-bindings for shared subgraphs; see
// internal/tensor/serialize.go). Cancellation and deadlines propagate
// from the server down through exploration and extraction via the job
// context.
package tensat

import (
	"context"
	"io"
	"time"

	"tensat/internal/cost"
	"tensat/internal/obs"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

// Re-exported tensor IR types, so library users only import tensat.
type (
	// Graph is a single-rooted tensor computation DAG.
	Graph = tensor.Graph
	// Node is a node of a tensor graph.
	Node = tensor.Node
	// Builder constructs shape-checked tensor graphs.
	Builder = tensor.Builder
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// CostModel prices a single operator application.
	CostModel = cost.Model
	// Rule is a rewrite rule (single- or multi-pattern).
	Rule = rewrite.Rule
)

// Activation and padding modes for Builder calls.
const (
	ActNone    = tensor.ActNone
	ActSigmoid = tensor.ActSigmoid
	ActRelu    = tensor.ActRelu
	ActTanh    = tensor.ActTanh
	PadSame    = tensor.PadSame
	PadValid   = tensor.PadValid
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return tensor.NewBuilder() }

// DefaultCostModel returns the simulated T4 device model.
func DefaultCostModel() CostModel { return cost.NewT4() }

// RuntimeModel wraps a cost model with the deterministic measurement
// deviations used as ground-truth "graph runtime" in the experiments.
func RuntimeModel(base CostModel) CostModel { return cost.NewRuntime(base) }

// DefaultRules returns the full TASO-style rule set (single- and
// multi-pattern).
func DefaultRules() []*Rule { return rules.Default() }

// NewRule builds a single-pattern rewrite rule from S-expression
// patterns, e.g. NewRule("fuse", "(relu (matmul 0 ?x ?y))", "(matmul 2 ?x ?y)").
func NewRule(name, source, target string) (*Rule, error) {
	return rewrite.NewRule(name, source, target)
}

// NewMultiRule builds a multi-pattern rule; sources and targets are
// whitespace-separated pattern lists with pairwise matched outputs.
func NewMultiRule(name, sources, targets string) (*Rule, error) {
	return rewrite.NewMultiRule(name, sources, targets)
}

// Extractor selects the extraction algorithm (§5.1).
type Extractor int

const (
	// ExtractILP uses the ILP formulation (the paper's full approach).
	ExtractILP Extractor = iota
	// ExtractGreedy uses per-class greedy selection.
	ExtractGreedy
)

// CycleFilter selects the cycle handling strategy (§5.2).
type CycleFilter int

const (
	// FilterEfficient is Algorithm 2 (default; enables ILP without
	// cycle constraints).
	FilterEfficient CycleFilter = iota
	// FilterVanilla re-scans the e-graph before every substitution.
	FilterVanilla
	// FilterNone disables filtering; ILP extraction then uses the
	// topological-order cycle constraints.
	FilterNone
)

// Options configure Optimize. Zero values take the paper's defaults.
//
// Every exported field participates in serving-cache identity — it
// must be read by one of the key functions named below — unless it is
// explicitly exempted as pure observability. tensatlint's cachekey
// analyzer enforces this; see cmd/tensatlint.
//
//lint:cachekey keyfunc=tensat/internal/serve.optionsKey keyfunc=tensat/internal/serve.Service.resolveProfile
type Options struct {
	// Rules is the rewrite rule set; nil means DefaultRules.
	Rules []*Rule
	// CostModel prices operators; nil means DefaultCostModel.
	CostModel CostModel
	// RuleSet selects a named rule set from the optimizer's Registry
	// (e.g. "taso-default", "taso-single", or a loaded .rules profile).
	// It applies only when Rules is nil; "" means the default set. An
	// unknown name fails Submit with ErrUnknownProfile.
	RuleSet string
	// CostModelName selects a named cost model from the Registry (e.g.
	// "t4", "a100", "cpu", or a loaded device spec). It applies only
	// when CostModel is nil; "" means the optimizer's default device.
	CostModelName string
	// NodeLimit bounds the e-graph size (paper: 50000).
	NodeLimit int
	// IterLimit bounds exploration iterations (paper: 15).
	IterLimit int
	// KMulti is the number of iterations multi-pattern rules fire
	// (paper: 1; 2 for Inception-v3).
	KMulti int
	// ExploreTimeout bounds the exploration phase.
	ExploreTimeout time.Duration
	// Workers bounds the goroutines used by the e-matching search
	// phase of exploration, which runs against a frozen read-only view
	// of the e-graph so workers need no locks. When exploration runs
	// to its natural limits the result is byte-identical whatever the
	// value; under a time budget (ExploreTimeout, or the implicit
	// one-hour safety net) more workers explore further before the
	// budget expires. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// sequential search; values above GOMAXPROCS are clamped to it.
	Workers int
	// Extractor selects ILP or greedy extraction.
	Extractor Extractor
	// CycleFilter selects the exploration cycle strategy.
	CycleFilter CycleFilter
	// ILPTimeout bounds the ILP solver (paper: 1 hour).
	ILPTimeout time.Duration
	// ILPSolver selects the ILP backend: "" or "builtin" for the
	// parallel in-process branch-and-bound, "builtin-seq" for the
	// single-threaded search, "cbc" or "highs" to shell out to an
	// external MIP solver on PATH via MPS files. Unknown names fail
	// Submit; external names are accepted even when the binary is
	// absent (the job then fails with backend.ErrUnavailable).
	ILPSolver string
	// TopoInt uses integer topological variables when CycleFilter is
	// FilterNone (Table 5's "int" column).
	TopoInt bool
	// Progress, when non-nil, receives live snapshots from the running
	// pipeline: one per exploration iteration, one on the switch to
	// extraction, one per ILP incumbent improvement, and a terminal
	// snapshot. It is called serially from the job's goroutine, must
	// return quickly, and takes no part in option identity (a serving
	// cache must not key on it).
	//
	//lint:cachekey-exempt pure observability: snapshots never alter the result
	Progress func(Progress)
	// Trace, when true, records a structured phase-span trace of the
	// run — explore iterations with search/apply/rebuild children and
	// e-node/e-class deltas, extraction with ILP model/solve spans and
	// incumbent events — returned as Result.Trace. Like Progress it is
	// pure observability and takes no part in option identity.
	//
	//lint:cachekey-exempt pure observability: the trace rides along, the graph is identical
	Trace bool
}

// DefaultOptions mirrors the paper's experimental setup (§6.1).
func DefaultOptions() Options {
	return Options{
		NodeLimit:  50000,
		IterLimit:  15,
		KMulti:     1,
		ILPTimeout: time.Hour,
	}
}

// SearchStats reports what the e-matching search phase of exploration
// did, summed over iterations and canonical patterns. Scanned vs.
// Pruned shows the op-index win (classes visited vs. skipped because
// they lack a pattern's root operator); Dirty vs. Clean shows the
// incremental-search win on iterations >= 2 (candidates re-searched
// because they changed since the previous iteration vs. answered from
// the memoized match lists).
type SearchStats struct {
	// Time is the part of ExploreTime spent searching (the quantity
	// Options.Workers parallelizes).
	Time time.Duration
	// Scanned counts e-classes the pattern programs actually visited.
	Scanned int
	// Pruned counts e-classes skipped by the operator index.
	Pruned int
	// Dirty counts candidate classes re-searched incrementally; Clean
	// counts candidates answered from the previous iteration's matches.
	Dirty, Clean int
	// Matches counts the matches the search phase produced.
	Matches int
}

// ILPStats reports what the ILP extraction pipeline did: which backend
// solved the model, how much presolve shrank it first, and how the
// search went. Zero-valued for greedy extraction.
type ILPStats struct {
	// Solver is the backend that produced the solution ("builtin",
	// "builtin-seq", "cbc", "highs").
	Solver string
	// Workers is the number of search goroutines the builtin parallel
	// solver used (1 for sequential and external backends).
	Workers int
	// Explored counts branch-and-bound nodes expanded (0 for external
	// backends, which do not report it).
	Explored int64
	// Incumbents counts incumbent improvements during the solve.
	Incumbents int
	// PresolveFixed, PresolveDropped and PresolveRemoved report the
	// model reduction: variables fixed into the solution, candidate
	// nodes eliminated, and cycle-constraint rows dropped as vacuous.
	PresolveFixed, PresolveDropped, PresolveRemoved int
	// PresolveRatio is the fraction of candidate nodes presolve
	// eliminated (0 when presolve was skipped).
	PresolveRatio float64
}

// Result reports an optimization run.
type Result struct {
	// Graph is the optimized graph.
	Graph *Graph
	// OrigCost and OptCost are graph costs under the optimizer's model.
	OrigCost, OptCost float64
	// SpeedupPercent is (OrigCost/OptCost - 1) * 100.
	SpeedupPercent float64
	// ExploreTime and ExtractTime split the optimization time
	// (Table 3's breakdown).
	ExploreTime, ExtractTime time.Duration
	// ApplyTime and RebuildTime break ExploreTime down further: the
	// rule-application loops and the congruence rebuilds (incl. cycle
	// post-processing), summed over iterations. Search.Time is the
	// third component; the remainder is per-iteration bookkeeping such
	// as the descendants snapshot for cycle pre-filtering.
	ApplyTime, RebuildTime time.Duration
	// ENodes and EClasses are final e-graph sizes; Iterations counts
	// exploration rounds; Saturated is true only when a full iteration
	// completed without changing the e-graph — a canceled or timed-out
	// exploration never reports Saturated.
	ENodes, EClasses, Iterations int
	Saturated                    bool
	// Truncated is true when exploration stopped because its time
	// budget expired or the caller canceled, so the e-graph (and hence
	// the result) covers only part of the search space. Node/iteration
	// limits are the configured operating mode and do not count.
	Truncated bool
	// Canceled is true when exploration was cut short by context
	// cancellation; such a result is partial and callers (e.g. a
	// serving cache) must not treat it as the answer for the request.
	Canceled bool
	// FilteredNodes counts e-nodes removed by cycle filtering.
	FilteredNodes int
	// ILPOptimal is true when ILP extraction proved optimality.
	ILPOptimal bool
	// ILP details the ILP extraction run (backend, presolve reduction,
	// search counters); zero-valued for greedy extraction.
	ILP ILPStats
	// Search breaks down the e-matching search phase (op-index pruning,
	// incremental re-search, match counts).
	Search SearchStats
	// Trace is the run's phase-span tree when Options.Trace was set
	// (nil otherwise). It is immutable once returned and safe to share;
	// WriteChromeTrace exports it for Perfetto.
	Trace *TraceSpan
}

// TraceSpan is one timed phase of a run: name, start offset, duration,
// integer attributes, point events, and child spans. Result.Trace is
// the root of a span tree.
type TraceSpan = obs.Span

// TraceEvent is a point-in-time marker inside a TraceSpan, e.g. an ILP
// incumbent improvement carrying the new cost.
type TraceEvent = obs.Event

// WriteChromeTrace renders a span tree in the Chrome trace-event JSON
// format, which Perfetto (ui.perfetto.dev) and chrome://tracing open
// directly. A nil root writes an empty, still-valid trace.
func WriteChromeTrace(w io.Writer, root *TraceSpan) error {
	return obs.WriteChromeTrace(w, root)
}

// Optimize runs the full TENSAT pipeline on g: exploration by equality
// saturation, then extraction. It is a one-shot shim over Optimizer;
// callers optimizing many graphs should hold a single Optimizer so the
// rule set is compiled once.
func Optimize(g *Graph, opt Options) (*Result, error) {
	return OptimizeContext(context.Background(), g, opt)
}

// OptimizeContext is Optimize with cancellation and deadline
// propagation: ctx reaches the exploration runner, the greedy
// extractor, and the ILP branch-and-bound, so server-side timeouts and
// Options timeouts share one mechanism. Options.ExploreTimeout bounds
// only exploration (a soft stop: the partial e-graph is still
// extracted, as in the paper's anytime setup), while canceling ctx
// aborts the whole pipeline with ctx.Err().
//
// Like Optimize, it is a synchronous shim: it submits one job to a
// fresh Optimizer and waits for the result.
func OptimizeContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	job, err := NewOptimizer(WithRules(opt.Rules), WithCostModel(opt.CostModel)).Submit(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	return job.Result()
}

// GraphCost sums the model cost over the distinct nodes of g.
func GraphCost(m CostModel, g *Graph) float64 { return cost.GraphCost(m, g) }
