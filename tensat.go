// Package tensat is a Go implementation of TENSAT (Yang et al., MLSys
// 2021): tensor computation graph superoptimization via equality
// saturation. Instead of applying graph substitutions sequentially
// (and suffering the phase-ordering problem), TENSAT applies all
// rewrites simultaneously into an e-graph and extracts the globally
// cheapest equivalent graph with an ILP.
//
// Quick start:
//
//	b := tensat.NewBuilder()
//	x := b.Input("x", 64, 256)
//	w1 := b.Weight("w1", 256, 256)
//	w2 := b.Weight("w2", 256, 256)
//	g := b.MustFinish(b.Matmul(tensat.ActNone, x, w1), b.Matmul(tensat.ActNone, x, w2))
//	res, err := tensat.Optimize(g, tensat.DefaultOptions())
//	// res.Graph now computes both outputs with one merged matmul.
//
// The root package re-exports the tensor IR (see the tensor aliases
// below) and drives the internal packages: internal/egraph (the
// e-graph substrate), internal/rewrite (exploration with multi-pattern
// rewrites and cycle filtering), internal/rules (the TASO-style rule
// set), internal/extract and internal/ilp (greedy and ILP extraction),
// and internal/cost (the simulated device cost model).
//
// # Optimization as a service
//
// Beyond the one-shot Optimize call, the repository ships an
// optimization service. internal/fingerprint canonically content-hashes
// graphs (structurally identical graphs map to one SHA-256 key
// regardless of node insertion order or input names); internal/serve
// wraps the pipeline in a concurrent service with an LRU result cache
// keyed by fingerprint+options, singleflight deduplication of in-flight
// identical requests, a bounded worker pool, and latency/hit-rate
// statistics; and cmd/tensatd exposes it over HTTP+JSON:
//
//	POST /optimize  — body {"graph": "<wire format>", ...options}
//	GET  /stats     — cache and latency counters
//	GET  /healthz   — liveness
//
// Graphs travel in the textual wire format of Graph.MarshalText
// (S-expressions with let-bindings for shared subgraphs; see
// internal/tensor/serialize.go). Cancellation and deadlines propagate
// from the server down through exploration and extraction via
// OptimizeContext, which is the context-aware form of Optimize.
package tensat

import (
	"context"
	"fmt"
	"time"

	"tensat/internal/cost"
	"tensat/internal/extract"
	"tensat/internal/ilp"
	"tensat/internal/rewrite"
	"tensat/internal/rules"
	"tensat/internal/tensor"
)

// Re-exported tensor IR types, so library users only import tensat.
type (
	// Graph is a single-rooted tensor computation DAG.
	Graph = tensor.Graph
	// Node is a node of a tensor graph.
	Node = tensor.Node
	// Builder constructs shape-checked tensor graphs.
	Builder = tensor.Builder
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// CostModel prices a single operator application.
	CostModel = cost.Model
	// Rule is a rewrite rule (single- or multi-pattern).
	Rule = rewrite.Rule
)

// Activation and padding modes for Builder calls.
const (
	ActNone    = tensor.ActNone
	ActSigmoid = tensor.ActSigmoid
	ActRelu    = tensor.ActRelu
	ActTanh    = tensor.ActTanh
	PadSame    = tensor.PadSame
	PadValid   = tensor.PadValid
)

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return tensor.NewBuilder() }

// DefaultCostModel returns the simulated T4 device model.
func DefaultCostModel() CostModel { return cost.NewT4() }

// RuntimeModel wraps a cost model with the deterministic measurement
// deviations used as ground-truth "graph runtime" in the experiments.
func RuntimeModel(base CostModel) CostModel { return cost.NewRuntime(base) }

// DefaultRules returns the full TASO-style rule set (single- and
// multi-pattern).
func DefaultRules() []*Rule { return rules.Default() }

// NewRule builds a single-pattern rewrite rule from S-expression
// patterns, e.g. NewRule("fuse", "(relu (matmul 0 ?x ?y))", "(matmul 2 ?x ?y)").
func NewRule(name, source, target string) (*Rule, error) {
	return rewrite.NewRule(name, source, target)
}

// NewMultiRule builds a multi-pattern rule; sources and targets are
// whitespace-separated pattern lists with pairwise matched outputs.
func NewMultiRule(name, sources, targets string) (*Rule, error) {
	return rewrite.NewMultiRule(name, sources, targets)
}

// Extractor selects the extraction algorithm (§5.1).
type Extractor int

const (
	// ExtractILP uses the ILP formulation (the paper's full approach).
	ExtractILP Extractor = iota
	// ExtractGreedy uses per-class greedy selection.
	ExtractGreedy
)

// CycleFilter selects the cycle handling strategy (§5.2).
type CycleFilter int

const (
	// FilterEfficient is Algorithm 2 (default; enables ILP without
	// cycle constraints).
	FilterEfficient CycleFilter = iota
	// FilterVanilla re-scans the e-graph before every substitution.
	FilterVanilla
	// FilterNone disables filtering; ILP extraction then uses the
	// topological-order cycle constraints.
	FilterNone
)

// Options configure Optimize. Zero values take the paper's defaults.
type Options struct {
	// Rules is the rewrite rule set; nil means DefaultRules.
	Rules []*Rule
	// CostModel prices operators; nil means DefaultCostModel.
	CostModel CostModel
	// NodeLimit bounds the e-graph size (paper: 50000).
	NodeLimit int
	// IterLimit bounds exploration iterations (paper: 15).
	IterLimit int
	// KMulti is the number of iterations multi-pattern rules fire
	// (paper: 1; 2 for Inception-v3).
	KMulti int
	// ExploreTimeout bounds the exploration phase.
	ExploreTimeout time.Duration
	// Workers bounds the goroutines used by the e-matching search
	// phase of exploration, which runs against a frozen read-only view
	// of the e-graph so workers need no locks. When exploration runs
	// to its natural limits the result is byte-identical whatever the
	// value; under a time budget (ExploreTimeout, or the implicit
	// one-hour safety net) more workers explore further before the
	// budget expires. 0 means runtime.GOMAXPROCS(0); 1 forces the
	// sequential search.
	Workers int
	// Extractor selects ILP or greedy extraction.
	Extractor Extractor
	// CycleFilter selects the exploration cycle strategy.
	CycleFilter CycleFilter
	// ILPTimeout bounds the ILP solver (paper: 1 hour).
	ILPTimeout time.Duration
	// TopoInt uses integer topological variables when CycleFilter is
	// FilterNone (Table 5's "int" column).
	TopoInt bool
}

// DefaultOptions mirrors the paper's experimental setup (§6.1).
func DefaultOptions() Options {
	return Options{
		NodeLimit:  50000,
		IterLimit:  15,
		KMulti:     1,
		ILPTimeout: time.Hour,
	}
}

// Result reports an optimization run.
type Result struct {
	// Graph is the optimized graph.
	Graph *Graph
	// OrigCost and OptCost are graph costs under the optimizer's model.
	OrigCost, OptCost float64
	// SpeedupPercent is (OrigCost/OptCost - 1) * 100.
	SpeedupPercent float64
	// ExploreTime and ExtractTime split the optimization time
	// (Table 3's breakdown).
	ExploreTime, ExtractTime time.Duration
	// ENodes and EClasses are final e-graph sizes; Iterations counts
	// exploration rounds; Saturated is true only when a full iteration
	// completed without changing the e-graph — a canceled or timed-out
	// exploration never reports Saturated.
	ENodes, EClasses, Iterations int
	Saturated                    bool
	// Truncated is true when exploration stopped because its time
	// budget expired or the caller canceled, so the e-graph (and hence
	// the result) covers only part of the search space. Node/iteration
	// limits are the configured operating mode and do not count.
	Truncated bool
	// Canceled is true when exploration was cut short by context
	// cancellation; such a result is partial and callers (e.g. a
	// serving cache) must not treat it as the answer for the request.
	Canceled bool
	// FilteredNodes counts e-nodes removed by cycle filtering.
	FilteredNodes int
	// ILPOptimal is true when ILP extraction proved optimality.
	ILPOptimal bool
}

// Optimize runs the full TENSAT pipeline on g: exploration by equality
// saturation, then extraction.
func Optimize(g *Graph, opt Options) (*Result, error) {
	return OptimizeContext(context.Background(), g, opt)
}

// OptimizeContext is Optimize with cancellation and deadline
// propagation: ctx reaches the exploration runner, the greedy
// extractor, and the ILP branch-and-bound, so server-side timeouts and
// Options timeouts share one mechanism. Options.ExploreTimeout bounds
// only exploration (a soft stop: the partial e-graph is still
// extracted, as in the paper's anytime setup), while canceling ctx
// aborts the whole pipeline with ctx.Err().
func OptimizeContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("tensat: nil graph")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ruleset := opt.Rules
	if ruleset == nil {
		ruleset = rules.Default()
	}
	model := opt.CostModel
	if model == nil {
		model = cost.NewT4()
	}
	def := DefaultOptions()
	if opt.NodeLimit == 0 {
		opt.NodeLimit = def.NodeLimit
	}
	if opt.IterLimit == 0 {
		opt.IterLimit = def.IterLimit
	}
	if opt.ILPTimeout == 0 {
		opt.ILPTimeout = def.ILPTimeout
	}

	runner := rewrite.NewRunner(ruleset)
	runner.Limits = rewrite.Limits{
		MaxNodes: opt.NodeLimit,
		MaxIters: opt.IterLimit,
		KMulti:   opt.KMulti,
		Timeout:  opt.ExploreTimeout,
	}
	runner.Workers = opt.Workers
	switch opt.CycleFilter {
	case FilterVanilla:
		runner.Filter = rewrite.FilterVanilla
	case FilterNone:
		runner.Filter = rewrite.FilterNone
	default:
		runner.Filter = rewrite.FilterEfficient
	}
	// ExploreTimeout stays the runner's soft budget (Limits.Timeout,
	// set above): expiry keeps the partial e-graph. The caller's ctx is
	// the hard stop — both flow into RunContext, whose Stats
	// distinguish HitTimeout from Canceled.
	ex, err := runner.RunContext(ctx, g)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var res *extract.Result
	switch opt.Extractor {
	case ExtractGreedy:
		res, err = extract.GreedyContext(ctx, ex, model)
	default:
		topo := ilp.TopoReal
		if opt.TopoInt {
			topo = ilp.TopoInt
		}
		res, err = extract.ILPContext(ctx, ex, model, extract.ILPOptions{
			CycleConstraints: opt.CycleFilter == FilterNone,
			TopoMode:         topo,
			Timeout:          opt.ILPTimeout,
		})
	}
	if err != nil {
		// A canceled context can surface from the extractors as a
		// domain error (e.g. the ILP's ErrTimeout when cancellation
		// arrives before any incumbent); report the cancellation so
		// callers don't classify client abandonment as a failure.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	orig := cost.GraphCost(model, g)
	out := &Result{
		Graph:          res.Graph,
		OrigCost:       orig,
		OptCost:        res.Cost,
		SpeedupPercent: cost.SpeedupPercent(orig, res.Cost),
		ExploreTime:    ex.Stats.ExploreTime,
		ExtractTime:    res.Time,
		ENodes:         ex.Stats.ENodes,
		EClasses:       ex.Stats.EClasses,
		Iterations:     ex.Stats.Iterations,
		Saturated:      ex.Stats.Saturated,
		Truncated:      ex.Stats.HitTimeout || ex.Stats.Canceled,
		Canceled:       ex.Stats.Canceled,
		FilteredNodes:  ex.Stats.FilteredNodes,
	}
	if res.ILP != nil {
		out.ILPOptimal = res.ILP.Optimal
	}
	return out, nil
}

// GraphCost sums the model cost over the distinct nodes of g.
func GraphCost(m CostModel, g *Graph) float64 { return cost.GraphCost(m, g) }
