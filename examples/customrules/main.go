// Customrules: extend the optimizer with user-defined rewrite rules
// and a custom cost model. The example adds a (contrived) hardware
// where tanh is catastrophically slow, plus a rewrite set containing
// only activation fusion — and shows the extraction following the
// custom cost model's preferences.
package main

import (
	"fmt"
	"log"

	"tensat"
	"tensat/internal/tensor"
)

// slowTanh wraps a base model, making standalone tanh kernels 50x
// more expensive (think: an accelerator without a native tanh unit,
// where only the fused matmul epilogue implements it efficiently).
type slowTanh struct{ base tensat.CostModel }

func (m slowTanh) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	c := m.base.NodeCost(op, ival, sval, args)
	if op == tensor.OpTanh {
		return c * 50
	}
	return c
}

func main() {
	log.SetFlags(0)

	b := tensat.NewBuilder()
	x := b.Input("x", 32, 512)
	w := b.Weight("w", 512, 512)
	g, err := b.Finish(b.Tanh(b.Matmul(tensat.ActNone, x, w)))
	if err != nil {
		log.Fatal(err)
	}

	fuse, err := tensat.NewRule("fuse-tanh",
		"(tanh (matmul 0 ?x ?y))", "(matmul 3 ?x ?y)")
	if err != nil {
		log.Fatal(err)
	}

	opt := tensat.DefaultOptions()
	opt.Rules = []*tensat.Rule{fuse}
	opt.CostModel = slowTanh{base: tensat.DefaultCostModel()}

	res, err := tensat.Optimize(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with slow-tanh hardware: %.1f us -> %.1f us (%.1f%% speedup)\n",
		res.OrigCost, res.OptCost, res.SpeedupPercent)
	fmt.Printf("optimized graph: %v\n", res.Graph)
	if h := res.Graph.OpHistogram(); h[tensor.OpTanh] == 0 {
		fmt.Println("standalone tanh eliminated: the custom rule fused it into the matmul")
	}
}
