// Customrules: extend the optimizer with user-defined rewrite rules
// and custom cost models, two ways.
//
// Part 1 wires a rule and a model directly into Options (the original
// programmatic API): a contrived accelerator where standalone tanh is
// catastrophically slow, plus a rewrite set containing only activation
// fusion — extraction follows the custom model's preferences.
//
// Part 2 does the same through named profiles: a .rules file and a
// JSON device spec are loaded into a tensat.Registry and selected by
// name via Options.RuleSet/CostModelName — exactly how a tensatd
// client would select them with the "ruleset"/"cost_model" request
// fields.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tensat"
	"tensat/internal/tensor"
)

// slowTanh wraps a base model, making standalone tanh kernels 50x
// more expensive (think: an accelerator without a native tanh unit,
// where only the fused matmul epilogue implements it efficiently).
type slowTanh struct{ base tensat.CostModel }

func (m slowTanh) NodeCost(op tensor.Op, ival int64, sval string, args []*tensor.Meta) float64 {
	c := m.base.NodeCost(op, ival, sval, args)
	if op == tensor.OpTanh {
		return c * 50
	}
	return c
}

func buildGraph() *tensat.Graph {
	b := tensat.NewBuilder()
	x := b.Input("x", 32, 512)
	w := b.Weight("w", 512, 512)
	g, err := b.Finish(b.Tanh(b.Matmul(tensat.ActNone, x, w)))
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	log.SetFlags(0)

	// --- Part 1: rules and model as Go objects on the Options ---
	fuse, err := tensat.NewRule("fuse-tanh",
		"(tanh (matmul 0 ?x ?y))", "(matmul 3 ?x ?y)")
	if err != nil {
		log.Fatal(err)
	}

	opt := tensat.DefaultOptions()
	opt.Rules = []*tensat.Rule{fuse}
	opt.CostModel = slowTanh{base: tensat.DefaultCostModel()}

	res, err := tensat.Optimize(buildGraph(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with slow-tanh hardware: %.1f us -> %.1f us (%.1f%% speedup)\n",
		res.OrigCost, res.OptCost, res.SpeedupPercent)
	fmt.Printf("optimized graph: %v\n", res.Graph)
	if h := res.Graph.OpHistogram(); h[tensor.OpTanh] == 0 {
		fmt.Println("standalone tanh eliminated: the custom rule fused it into the matmul")
	}

	// --- Part 2: the same hardware story as named, content-addressed
	// profiles in a registry ---
	dir, err := os.MkdirTemp("", "tensat-profiles")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ruleFile := filepath.Join(dir, "fuse-only.rules")
	if err := os.WriteFile(ruleFile, []byte(
		"# only activation fusion\n"+
			"fuse-tanh: (tanh (matmul 0 ?x ?y)) => (matmul 3 ?x ?y)\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	deviceFile := filepath.Join(dir, "no-tanh-unit.json")
	if err := os.WriteFile(deviceFile, []byte(`{
		"name": "no-tanh-unit",
		"launch_us": 8.0,
		"peak_gflops": 4000,
		"mem_bw_gbps": 220,
		"fused_act_us": 0.5,
		"group_penalty": 0.25,
		"op_scale": {"tanh": 50}
	}`), 0o644); err != nil {
		log.Fatal(err)
	}

	registry := tensat.NewRegistry() // built-ins included
	rsInfo, err := registry.LoadRuleFile(ruleFile)
	if err != nil {
		log.Fatal(err)
	}
	cmInfo, err := registry.LoadDeviceFile(deviceFile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered ruleset %q (hash %.12s) and costmodel %q (hash %.12s)\n",
		rsInfo.Name, rsInfo.Hash, cmInfo.Name, cmInfo.Hash)

	popt := tensat.DefaultOptions()
	popt.RuleSet = "fuse-only"
	popt.CostModelName = "no-tanh-unit"
	job, err := tensat.NewOptimizer(tensat.WithRegistry(registry)).Submit(context.Background(), buildGraph(), popt)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := job.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via named profiles:      %.1f us -> %.1f us (%.1f%% speedup)\n",
		pres.OrigCost, pres.OptCost, pres.SpeedupPercent)

	// An unknown profile fails the submission, listing what exists.
	bad := tensat.DefaultOptions()
	bad.RuleSet = "no-such-profile"
	if _, err := tensat.NewOptimizer(tensat.WithRegistry(registry)).Submit(context.Background(), buildGraph(), bad); err != nil {
		fmt.Printf("unknown profile rejected: %v\n", err)
	}
}
