// Asyncjob: submit an optimization as an asynchronous job and watch
// it run. Submit returns a *tensat.Job immediately; the caller polls
// Job.Progress() for live snapshots (phase, iteration, e-graph sizes,
// ILP incumbent) while the pipeline works, and harvests the result
// with Job.Result() once Job.Done() closes. Job.Cancel() (not shown
// stopping this run) aborts at the next pipeline check point.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tensat"
	"tensat/internal/models"
)

func main() {
	log.SetFlags(0)

	g := models.NasRNN(models.ScaleTest)

	opts := tensat.DefaultOptions()
	opts.Extractor = tensat.ExtractGreedy
	opts.NodeLimit = 20000

	job, err := tensat.NewOptimizer().Submit(context.Background(), g, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The submitter is free while the job runs; poll for progress.
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
poll:
	for {
		select {
		case <-job.Done():
			break poll
		case <-ticker.C:
			p := job.Progress()
			fmt.Printf("[%6s] phase=%-8s iter=%-3d enodes=%d\n",
				p.Elapsed.Round(10*time.Millisecond), p.Phase, p.Iteration, p.ENodes)
		}
	}

	res, err := job.Result()
	if err != nil {
		log.Fatal(err)
	}
	final := job.Progress()
	fmt.Printf("\n%s after %v: %.1f us -> %.1f us (%.1f%% speedup)\n",
		final.Phase, final.Elapsed.Round(time.Millisecond),
		res.OrigCost, res.OptCost, res.SpeedupPercent)
}
