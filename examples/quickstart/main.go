// Quickstart: build a small tensor graph with two matmuls sharing an
// input (the motivating example of the paper's Figure 2), optimize it
// with equality saturation, and show that the optimizer merged them
// into one matmul over concatenated weights.
package main

import (
	"fmt"
	"log"

	"tensat"
)

func main() {
	log.SetFlags(0)

	// x W1 and x W2: two matmuls sharing their left input.
	b := tensat.NewBuilder()
	x := b.Input("x", 64, 256)
	w1 := b.Weight("w1", 256, 256)
	w2 := b.Weight("w2", 256, 256)
	out1 := b.Matmul(tensat.ActNone, x, w1)
	out2 := b.Matmul(tensat.ActNone, x, w2)
	g, err := b.Finish(out1, out2)
	if err != nil {
		log.Fatal(err)
	}

	res, err := tensat.Optimize(g, tensat.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original:  cost %.1f us\n", res.OrigCost)
	fmt.Printf("optimized: cost %.1f us (%.1f%% speedup)\n", res.OptCost, res.SpeedupPercent)
	fmt.Printf("explore %v + extract %v across %d e-nodes\n",
		res.ExploreTime, res.ExtractTime, res.ENodes)
	fmt.Println("\noptimized graph:")
	fmt.Println(res.Graph)
	// The optimized graph computes
	//   split0/split1(split(matmul(x, concat(w1, w2))))
	// — one kernel instead of two, with the weight concat folded at
	// compile time.
}
