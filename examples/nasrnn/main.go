// NasRNN: optimize the paper's headline benchmark — a NAS-discovered
// RNN cell whose many small matmuls and element-wise kernels merge
// into a few wide ones (the Figure 11 pattern family). Compares the
// TENSAT result against the sequential TASO baseline, reproducing the
// shape of Table 1's NasRNN row.
package main

import (
	"fmt"
	"log"
	"time"

	"tensat"
	"tensat/internal/cost"
	"tensat/internal/models"
	"tensat/internal/rules"
	"tensat/internal/taso"
	"tensat/internal/tensor"
)

func main() {
	log.SetFlags(0)

	g := models.NasRNN(models.ScaleTest)
	model := tensat.DefaultCostModel()
	orig := tensat.GraphCost(model, g)
	fmt.Printf("NasRNN original: cost %.1f us, ops: %s\n\n",
		orig, tensor.HistogramString(g.OpHistogram()))

	// TENSAT: equality saturation + ILP extraction.
	start := time.Now()
	res, err := tensat.Optimize(g, tensat.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TENSAT: cost %.1f us (%.1f%% speedup) in %v\n",
		res.OptCost, res.SpeedupPercent, time.Since(start).Round(time.Millisecond))
	fmt.Printf("        ops: %s\n\n", tensor.HistogramString(res.Graph.OpHistogram()))

	// TASO baseline: sequential backtracking search.
	start = time.Now()
	tres, err := taso.Search(g, rules.Default(), cost.NewT4(), taso.Options{
		N: 30, Alpha: 1.05, Timeout: time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TASO:   cost %.1f us (%.1f%% speedup) in %v (%d iterations)\n",
		tres.Cost, cost.SpeedupPercent(orig, tres.Cost),
		time.Since(start).Round(time.Millisecond), tres.Iterations)
	fmt.Printf("        ops: %s\n", tensor.HistogramString(tres.Graph.OpHistogram()))
}
