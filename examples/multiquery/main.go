// Multiquery: transformer-style attention blocks whose Q/K/V
// projections read the same input. The multi-pattern rewrite of
// Figure 2 (plus the Figure 8 concat factoring) lets the optimizer
// batch all three projections into one matmul — the optimization BERT
// benefits from in the paper's evaluation.
//
// The example optimizes the block at two hidden sizes through one
// reusable tensat.Optimizer, so the rewrite rule set is compiled once
// and shared by both jobs — the pattern to follow whenever more than
// one graph is optimized in a process.
package main

import (
	"context"
	"fmt"
	"log"

	"tensat"
)

// attention builds the Q/K/V projection block over a seq x hid input.
func attention(seq, hid int) (*tensat.Graph, error) {
	b := tensat.NewBuilder()
	x := b.Input("tokens", seq, hid)
	wq := b.Weight("wq", hid, hid)
	wk := b.Weight("wk", hid, hid)
	wv := b.Weight("wv", hid, hid)

	q := b.Matmul(tensat.ActNone, x, wq)
	k := b.Matmul(tensat.ActNone, x, wk)
	v := b.Matmul(tensat.ActNone, x, wv)
	scores := b.Matmul(tensat.ActNone, q, b.Transpose(k, 1, 0))
	return b.Finish(b.Matmul(tensat.ActNone, scores, v))
}

func main() {
	log.SetFlags(0)

	// One optimizer, many graphs: the TASO-style rule set is parsed
	// and compiled on the first submit only.
	opt := tensat.NewOptimizer()

	for _, hid := range []int{128, 256} {
		g, err := attention(64, hid)
		if err != nil {
			log.Fatal(err)
		}
		job, err := opt.Submit(context.Background(), g, tensat.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Result()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attention block (hid=%d): %.1f us -> %.1f us (%.1f%% speedup)\n",
			hid, res.OrigCost, res.OptCost, res.SpeedupPercent)
		fmt.Printf("e-graph: %d nodes, %d classes, %d exploration iterations\n",
			res.ENodes, res.EClasses, res.Iterations)
	}
}
