// Multiquery: a transformer-style attention block whose Q/K/V
// projections read the same input. The multi-pattern rewrite of
// Figure 2 (plus the Figure 8 concat factoring) lets the optimizer
// batch all three projections into one matmul — the optimization BERT
// benefits from in the paper's evaluation.
package main

import (
	"fmt"
	"log"

	"tensat"
)

func main() {
	log.SetFlags(0)

	const (
		seq = 64
		hid = 256
	)
	b := tensat.NewBuilder()
	x := b.Input("tokens", seq, hid)
	wq := b.Weight("wq", hid, hid)
	wk := b.Weight("wk", hid, hid)
	wv := b.Weight("wv", hid, hid)

	q := b.Matmul(tensat.ActNone, x, wq)
	k := b.Matmul(tensat.ActNone, x, wk)
	v := b.Matmul(tensat.ActNone, x, wv)
	scores := b.Matmul(tensat.ActNone, q, b.Transpose(k, 1, 0))
	attn := b.Matmul(tensat.ActNone, scores, v)
	g, err := b.Finish(attn)
	if err != nil {
		log.Fatal(err)
	}

	opt := tensat.DefaultOptions()
	res, err := tensat.Optimize(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attention block: %.1f us -> %.1f us (%.1f%% speedup)\n",
		res.OrigCost, res.OptCost, res.SpeedupPercent)
	fmt.Printf("e-graph: %d nodes, %d classes, %d exploration iterations\n",
		res.ENodes, res.EClasses, res.Iterations)
	fmt.Println("\noptimized graph:")
	fmt.Println(res.Graph)
}
