# Developer entry points. Everything here is plain `go` — no tools
# need installing; the two network-fetched linters are pinned by
# version below so CI and laptops agree on what they run.

GO ?= go

# Pinned external linters (used by lint-full; `go run` fetches them on
# demand, so they need network the first time). Bump deliberately —
# these versions are what CI enforces.
STATICCHECK = honnef.co/go/tools/cmd/staticcheck@2025.1
GOVULNCHECK = golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: build test race lint lint-full vet-rules fmt-check tensatlint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/serve/... ./internal/egraph/... ./internal/rewrite/... .

# lint runs every check that works offline: gofmt, go vet, the
# project's own invariant analyzers (tensatlint), and the static
# rule/profile verifier. This is the pre-push gate.
lint: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/tensatlint ./...
	$(GO) run ./cmd/tensat vet-rules profiles/rules

# lint-full additionally runs the pinned third-party linters; needs
# network on first run to fetch them. CI runs this.
lint-full: lint
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...

vet-rules:
	$(GO) run ./cmd/tensat vet-rules profiles/rules

tensatlint:
	$(GO) run ./cmd/tensatlint ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
