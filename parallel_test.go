package tensat_test

import (
	"bytes"
	"testing"
	"time"

	"tensat"
	"tensat/internal/models"
)

// attentionGraph mirrors examples/multiquery: Q/K/V projections off a
// shared input feeding an attention product.
func attentionGraph(t testing.TB) *tensat.Graph {
	t.Helper()
	const seq, hid = 64, 256
	b := tensat.NewBuilder()
	x := b.Input("tokens", seq, hid)
	wq := b.Weight("wq", hid, hid)
	wk := b.Weight("wk", hid, hid)
	wv := b.Weight("wv", hid, hid)
	q := b.Matmul(tensat.ActNone, x, wq)
	k := b.Matmul(tensat.ActNone, x, wk)
	v := b.Matmul(tensat.ActNone, x, wv)
	scores := b.Matmul(tensat.ActNone, q, b.Transpose(k, 1, 0))
	g, err := b.Finish(b.Matmul(tensat.ActNone, scores, v))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func nasrnnGraph(t testing.TB) *tensat.Graph {
	t.Helper()
	m, err := models.ByName("NasRNN")
	if err != nil {
		t.Fatal(err)
	}
	return m.Build(models.ScaleTest)
}

// TestParallelWorkersByteIdenticalResults is the end-to-end contract
// of the Workers knob: Workers=1 and Workers=4 must produce
// byte-identical optimized graphs (and identical costs) on the nasrnn
// and multiquery example workloads.
func TestParallelWorkersByteIdenticalResults(t *testing.T) {
	cases := []struct {
		name  string
		graph func(testing.TB) *tensat.Graph
		tune  func(*tensat.Options)
	}{
		{
			name:  "nasrnn-greedy",
			graph: nasrnnGraph,
			tune: func(o *tensat.Options) {
				o.Extractor = tensat.ExtractGreedy
				o.NodeLimit = 3000
				o.IterLimit = 4
			},
		},
		{
			name:  "multiquery-ilp",
			graph: attentionGraph,
			tune: func(o *tensat.Options) {
				o.NodeLimit = 2000
				o.IterLimit = 5
				o.ILPTimeout = 30 * time.Second
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) ([]byte, *tensat.Result) {
				opt := tensat.DefaultOptions()
				tc.tune(&opt)
				opt.Workers = workers
				res, err := tensat.Optimize(tc.graph(t), opt)
				if err != nil {
					t.Fatal(err)
				}
				text, err := res.Graph.MarshalText()
				if err != nil {
					t.Fatal(err)
				}
				return text, res
			}
			seqText, seqRes := run(1)
			parText, parRes := run(4)
			if !bytes.Equal(seqText, parText) {
				t.Fatalf("extracted graphs differ between Workers=1 and Workers=4:\n%s\nvs\n%s", seqText, parText)
			}
			if seqRes.OptCost != parRes.OptCost || seqRes.ENodes != parRes.ENodes ||
				seqRes.EClasses != parRes.EClasses || seqRes.Iterations != parRes.Iterations {
				t.Fatalf("run shape differs: %+v vs %+v", seqRes, parRes)
			}
		})
	}
}
