module tensat

go 1.22
